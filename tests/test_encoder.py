"""Tests for repro.core.encoder — record-level c-vector encoding."""

import numpy as np
import pytest

from repro.core.cvector import CVectorEncoder
from repro.core.encoder import RecordEncoder

RECORDS = [
    ("JONES", "SMITH", "12 MAIN ST", "BOONE"),
    ("JONAS", "SMITH", "12 MAIN ST", "BOONE"),
    ("MARIA", "GARCIA", "99 OAK AVE APT 3", "DURHAM"),
]


class TestLayout:
    def test_offsets_accumulate(self, ncvr_encoder):
        widths = [lay.width for lay in ncvr_encoder.layouts]
        offsets = [lay.offset for lay in ncvr_encoder.layouts]
        assert widths == [15, 15, 68, 22]
        assert offsets == [0, 15, 30, 98]
        assert ncvr_encoder.total_bits == 120

    def test_layout_lookup(self, ncvr_encoder):
        assert ncvr_encoder.layout("f3").offset == 30
        with pytest.raises(KeyError):
            ncvr_encoder.layout("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RecordEncoder([CVectorEncoder(5, seed=0)] * 2, names=["a", "a"])

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError):
            RecordEncoder([CVectorEncoder(5, seed=0)], names=["a", "b"])

    def test_empty_encoders_rejected(self):
        with pytest.raises(ValueError):
            RecordEncoder([])


class TestEncode:
    def test_record_vector_is_concatenation(self, ncvr_encoder):
        record = RECORDS[0]
        vector = ncvr_encoder.encode(record)
        assert vector.n_bits == 120
        for layout, enc, value in zip(
            ncvr_encoder.layouts, ncvr_encoder.encoders, record
        ):
            assert vector.slice(layout.offset, layout.stop) == enc.encode(value)

    def test_arity_check(self, ncvr_encoder):
        with pytest.raises(ValueError, match="values"):
            ncvr_encoder.encode(("A", "B"))

    def test_dataset_matrix_matches_per_record(self, ncvr_encoder):
        matrix = ncvr_encoder.encode_dataset(RECORDS)
        for i, record in enumerate(RECORDS):
            assert matrix.row(i) == ncvr_encoder.encode(record)

    def test_encode_attribute_column(self, ncvr_encoder):
        matrix = ncvr_encoder.encode_attribute(RECORDS, "f2")
        enc = ncvr_encoder.attribute_encoder("f2")
        for i, record in enumerate(RECORDS):
            assert matrix.row(i) == enc.encode(record[1])

    def test_empty_dataset_rejected(self, ncvr_encoder):
        with pytest.raises(ValueError):
            ncvr_encoder.encode_dataset([])


class TestAttributeDistances:
    def test_distances_match_slices(self, ncvr_encoder):
        matrix = ncvr_encoder.encode_dataset(RECORDS)
        rows_a = np.asarray([0, 0, 1])
        rows_b = np.asarray([1, 2, 2])
        distances = ncvr_encoder.attribute_distances(matrix, rows_a, matrix, rows_b)
        for layout in ncvr_encoder.layouts:
            for idx, (a, b) in enumerate(zip(rows_a, rows_b)):
                expected = (
                    matrix.row(int(a))
                    .slice(layout.offset, layout.stop)
                    .hamming(matrix.row(int(b)).slice(layout.offset, layout.stop))
                )
                assert distances[layout.name][idx] == expected

    def test_identical_records_zero_everywhere(self, ncvr_encoder):
        matrix = ncvr_encoder.encode_dataset(RECORDS)
        rows = np.asarray([0, 1, 2])
        distances = ncvr_encoder.attribute_distances(matrix, rows, matrix, rows)
        for values in distances.values():
            assert (values == 0).all()

    def test_perturbed_attribute_isolated(self, ncvr_encoder):
        """Only the perturbed attribute shows a non-zero distance."""
        matrix = ncvr_encoder.encode_dataset(RECORDS[:2])  # differ only in f1
        distances = ncvr_encoder.attribute_distances(
            matrix, np.asarray([0]), matrix, np.asarray([1])
        )
        assert distances["f1"][0] > 0
        assert distances["f2"][0] == 0
        assert distances["f3"][0] == 0
        assert distances["f4"][0] == 0


class TestCalibration:
    def test_calibrated_reproduces_table3_widths(self):
        """Samples with exactly the Table 3 bigram counts yield its sizes."""
        def word(n):  # a string with exactly n bigrams
            return "ABCDEFGHIJKLMNOPQRSTUVWXYZ"[: n + 1]

        sample = [(word(5), word(5), word(20), word(7))] * 10
        enc = RecordEncoder.calibrated(sample, seed=0)
        assert [lay.width for lay in enc.layouts] == [15, 15, 68, 22]
        assert enc.total_bits == 120

    def test_seeded_calibration_reproducible(self):
        sample = [("JONES", "SMITH", "MAIN ST", "BOONE")] * 3
        from repro.data.generators import EXPERIMENT_SCHEME

        e1 = RecordEncoder.calibrated(sample, scheme=EXPERIMENT_SCHEME, seed=9)
        e2 = RecordEncoder.calibrated(sample, scheme=EXPERIMENT_SCHEME, seed=9)
        assert e1.encode(sample[0]) == e2.encode(sample[0])

    def test_attribute_hashes_differ(self):
        sample = [("ABCDE", "ABCDE")] * 5
        enc = RecordEncoder.calibrated(sample, seed=3)
        g1, g2 = enc.encoders[0].hash_fn, enc.encoders[1].hash_fn
        assert (g1.a, g1.b) != (g2.a, g2.b)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            RecordEncoder.calibrated([])
