"""Tests for repro.data.quality — missing values and non-standardisation."""

import numpy as np
import pytest

from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.data.quality import (
    CompositeScheme,
    MissingValueScheme,
    WordScrambleScheme,
    missingness_summary,
)
from repro.data.schema import Record, Schema

SCHEMA = Schema.of("f1", "f2", "f3")
RECORD = Record("A0", ("JONES", "12 MAIN ST", "BOONE"))


class TestMissingValueScheme:
    def test_blanks_with_probability_one(self):
        rng = np.random.default_rng(0)
        scheme = MissingValueScheme(missing_rate=1.0, protect=(0,))
        perturbed, log = scheme.perturb(RECORD, SCHEMA, rng, "B0")
        assert perturbed.values == ("JONES", "", "")
        assert len(log) == 2

    def test_never_blanks_everything(self):
        rng = np.random.default_rng(1)
        scheme = MissingValueScheme(missing_rate=1.0)
        perturbed, __ = scheme.perturb(RECORD, SCHEMA, rng, "B0")
        assert any(perturbed.values)

    def test_zero_rate_is_identity(self):
        rng = np.random.default_rng(2)
        scheme = MissingValueScheme(missing_rate=0.0)
        perturbed, log = scheme.perturb(RECORD, SCHEMA, rng, "B0")
        assert perturbed.values == RECORD.values
        assert log == ()

    def test_protected_attributes_survive(self):
        rng = np.random.default_rng(3)
        scheme = MissingValueScheme(missing_rate=1.0, protect=(0, 2))
        for i in range(5):
            perturbed, __ = scheme.perturb(RECORD, SCHEMA, rng, f"B{i}")
            assert perturbed.values[0] == "JONES"
            assert perturbed.values[2] == "BOONE"

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            MissingValueScheme(missing_rate=1.5)


class TestWordScrambleScheme:
    def test_rotates_multiword_values(self):
        rng = np.random.default_rng(4)
        scheme = WordScrambleScheme(scramble_rate=1.0)
        perturbed, log = scheme.perturb(RECORD, SCHEMA, rng, "B0")
        # Only f2 has multiple words.
        assert perturbed.values[0] == "JONES"
        assert perturbed.values[2] == "BOONE"
        assert sorted(perturbed.values[1].split()) == sorted("12 MAIN ST".split())
        assert perturbed.values[1] != "12 MAIN ST"
        assert len(log) == 1

    def test_single_word_untouched(self):
        rng = np.random.default_rng(5)
        scheme = WordScrambleScheme(scramble_rate=1.0)
        record = Record("A1", ("ONEWORD", "TWO WORDS", "X"))
        perturbed, __ = scheme.perturb(record, SCHEMA, rng, "B0")
        assert perturbed.values[0] == "ONEWORD"

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            WordScrambleScheme(scramble_rate=-0.1)


class TestCompositeScheme:
    def test_chains_schemes(self):
        rng = np.random.default_rng(6)
        composite = CompositeScheme(
            (WordScrambleScheme(1.0), MissingValueScheme(1.0, protect=(1,)))
        )
        perturbed, log = composite.perturb(RECORD, SCHEMA, rng, "B0")
        assert perturbed.values[0] == ""  # blanked by the second stage
        assert perturbed.values[1]  # protected, scrambled
        assert len(log) >= 2

    def test_name_derived(self):
        composite = CompositeScheme((WordScrambleScheme(0.5), MissingValueScheme(0.5)))
        assert composite.name == "scramble+missing"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeScheme(())

    def test_plugs_into_linkage_problem(self):
        composite = CompositeScheme(
            (scheme_pl(), MissingValueScheme(0.2, protect=(0, 1)))
        )
        problem = build_linkage_problem(NCVRGenerator(), 100, composite, seed=7)
        assert problem.n_true_matches > 0
        summary = missingness_summary(problem.dataset_b)
        assert summary["FirstName"] == 0.0
        assert summary["Address"] >= 0.0


class TestMissingnessSummary:
    def test_fractions(self):
        schema = Schema.of("a", "b")
        from repro.data.schema import Dataset

        dataset = Dataset(
            schema,
            [Record("r0", ("X", "")), Record("r1", ("", "")), Record("r2", ("Z", "W"))],
        )
        summary = missingness_summary(dataset)
        assert summary["a"] == pytest.approx(1 / 3)
        assert summary["b"] == pytest.approx(2 / 3)
