"""Tests for repro.baselines.bloom."""

import numpy as np
import pytest

from repro.baselines.bloom import (
    BloomFieldEncoder,
    BloomRecordEncoder,
    bloom_positions,
)


class TestBloomPositions:
    def test_deterministic(self):
        assert bloom_positions("JO", 500, 15) == bloom_positions("JO", 500, 15)

    def test_count_and_range(self):
        positions = bloom_positions("AB", 500, 15)
        assert len(positions) == 15
        assert all(0 <= p < 500 for p in positions)

    def test_double_hashing_structure(self):
        """Positions follow (H1 + i*H2) mod m — consecutive differences are
        constant mod m."""
        positions = bloom_positions("XY", 499, 6)
        diffs = {(positions[i + 1] - positions[i]) % 499 for i in range(5)}
        assert len(diffs) == 1

    def test_different_grams_differ(self):
        assert bloom_positions("AB", 500, 15) != bloom_positions("BA", 500, 15)


class TestBloomFieldEncoder:
    def test_width(self):
        enc = BloomFieldEncoder()
        assert enc.encode("JONES").n_bits == 500

    def test_membership_superset(self):
        """The filter of a string contains every one of its bigram's bits."""
        enc = BloomFieldEncoder()
        filter_positions = enc.positions("JONES")
        for gram in enc.scheme.grams("JONES"):
            assert set(bloom_positions(gram, 500, 15)) <= filter_positions

    def test_empty_string(self):
        assert BloomFieldEncoder().encode("").count() == 0

    def test_encode_all_matches_single(self):
        enc = BloomFieldEncoder()
        values = ["JONES", "", "SMITH"]
        matrix = enc.encode_all(values)
        for i, value in enumerate(values):
            assert matrix.row(i) == enc.encode(value)

    def test_distance_depends_on_string_length(self):
        """The paper's criticism of the Bloom filter space: one error in a
        short name moves the distance more than one error in a long word."""
        enc = BloomFieldEncoder()
        short = enc.encode("JOHN").hamming(enc.encode("JAHN"))
        long = enc.encode("SCALABILITY").hamming(enc.encode("SCELABILITY"))
        assert short != long  # length-dependent, unlike c-vectors

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFieldEncoder(n_bits=0)
        with pytest.raises(ValueError):
            BloomFieldEncoder(n_hashes=0)


class TestBloomRecordEncoder:
    def test_layout(self):
        enc = BloomRecordEncoder(4)
        assert enc.total_bits == 2000
        assert enc.layout("f3").offset == 1000

    def test_unknown_attribute(self):
        with pytest.raises(KeyError):
            BloomRecordEncoder(2).layout("f9")

    def test_encode_dataset_slices_match_fields(self):
        enc = BloomRecordEncoder(2)
        matrix = enc.encode_dataset([("JONES", "SMITH")])
        field = enc.field_encoder
        row = matrix.row(0)
        assert row.slice(0, 500) == field.encode("JONES")
        assert row.slice(500, 1000) == field.encode("SMITH")

    def test_arity_check(self):
        with pytest.raises(ValueError):
            BloomRecordEncoder(2).encode_dataset([("only",)])

    def test_attribute_distances(self):
        enc = BloomRecordEncoder(2)
        matrix = enc.encode_dataset([("JONES", "SMITH"), ("JONAS", "SMITH")])
        dist = enc.attribute_distances(
            matrix, np.asarray([0]), matrix, np.asarray([1])
        )
        assert dist["f1"][0] > 0
        assert dist["f2"][0] == 0
