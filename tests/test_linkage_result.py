"""Tests for LinkageResult and the experiment config dataclasses."""

import numpy as np
import pytest

from repro.core.config import (
    BlockingConfig,
    CalibrationConfig,
    DBLP_ATTRIBUTE_K,
    NCVR_ATTRIBUTE_K,
    PH_ATTRIBUTE_THRESHOLDS,
    PL_RECORD_THRESHOLD,
    RuleBlockingConfig,
)
from repro.core.linker import LinkageResult


class TestLinkageResult:
    @pytest.fixture
    def result(self):
        return LinkageResult(
            rows_a=np.asarray([0, 1, 2]),
            rows_b=np.asarray([5, 6, 7]),
            n_candidates=10,
            comparison_space=100,
            timings={"embed": 0.5, "match": 0.25},
        )

    def test_matches_as_pairs(self, result):
        assert result.matches == {(0, 5), (1, 6), (2, 7)}

    def test_n_matches(self, result):
        assert result.n_matches == 3

    def test_total_time(self, result):
        assert result.total_time == pytest.approx(0.75)

    def test_empty_result(self):
        empty = LinkageResult(
            rows_a=np.empty(0, dtype=np.int64),
            rows_b=np.empty(0, dtype=np.int64),
            n_candidates=0,
            comparison_space=100,
        )
        assert empty.matches == set()
        assert empty.n_matches == 0
        assert empty.total_time == 0.0


class TestPaperConfigConstants:
    def test_pl_threshold_is_substitution_bound(self):
        assert PL_RECORD_THRESHOLD == 4

    def test_ph_thresholds(self):
        assert PH_ATTRIBUTE_THRESHOLDS == {"f1": 4, "f2": 4, "f3": 8}

    def test_attribute_k_tables(self):
        assert NCVR_ATTRIBUTE_K == {"f1": 5, "f2": 5, "f3": 10}
        assert DBLP_ATTRIBUTE_K == {"f1": 5, "f2": 5, "f3": 12}

    def test_config_defaults(self):
        calibration = CalibrationConfig()
        assert calibration.rho == 1.0
        assert calibration.r == pytest.approx(1 / 3)
        blocking = BlockingConfig()
        assert blocking.k == 30
        assert blocking.delta == 0.1
        rule_blocking = RuleBlockingConfig()
        assert rule_blocking.k_per_attribute == {}
