"""Golden-parity harness: fixed-seed runs of every linker in the repo.

One place defines the linkage problem and one canonical configuration per
linker; ``tests/test_golden_parity.py`` asserts that each run reproduces
the committed ``tests/data/golden_parity.json`` byte for byte (matches and
candidate counts).  The JSON was captured from the pre-pipeline
implementations, so these tests prove the stage-pipeline refactor changed
*no* observable linkage behaviour.

Regenerate (only when a change is *supposed* to alter linkage output)::

    PYTHONPATH=src:tests python -m golden_linkers
"""

from __future__ import annotations

import json
from collections.abc import Callable
from pathlib import Path

from repro.baselines import (
    BfHLinker,
    CanopyLinker,
    HarraLinker,
    SMEBLinker,
    SortedNeighborhoodLinker,
)
from repro.core.config import NCVR_ATTRIBUTE_K
from repro.core.linker import CompactHammingLinker, StreamingLinker
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.data.pairs import LinkageProblem
from repro.hamming.sketch import VerifyConfig
from repro.perf import ParallelConfig
from repro.rules.parser import parse_rule

PROBLEM_N = 200
PROBLEM_SEED = 7
THRESHOLD = 4
K = 30
NCVR_RULE = "(f1<=4) & (f2<=4) & (f3<=8)"
GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "golden_parity.json"

#: Sketch prefilter exercised hard on the narrow NCVR embedding: a
#: one-word tier-1 sketch plus a tiny cache block, so every tiered code
#: path (reject, refine, remainder, block concatenation) runs even at
#: PROBLEM_N scale.  Prefilter-on runners must reproduce their plain
#: counterparts' golden payloads byte for byte.
PREFILTER = VerifyConfig(tiers=(1,), block_rows=64)

#: (matches, n_candidates) of one linker run.
RunOutcome = tuple[set[tuple[int, int]], int]


def make_problem() -> LinkageProblem:
    """The shared fixed-seed NCVR PL linkage problem."""
    return build_linkage_problem(
        NCVRGenerator(), PROBLEM_N, scheme_pl(), seed=PROBLEM_SEED
    )


def _run_cbv_record(problem: LinkageProblem, n_jobs: int = 1,
                    max_chunk_pairs: int | None = None,
                    verify: VerifyConfig | None = None) -> RunOutcome:
    linker = CompactHammingLinker.record_level(
        threshold=THRESHOLD,
        k=K,
        seed=PROBLEM_SEED,
        parallel=ParallelConfig(n_jobs=n_jobs),
        max_chunk_pairs=max_chunk_pairs,
        verify=verify,
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_cbv_rule(problem: LinkageProblem, n_jobs: int = 1) -> RunOutcome:
    linker = CompactHammingLinker.rule_aware(
        parse_rule(NCVR_RULE),
        k=NCVR_ATTRIBUTE_K,
        seed=PROBLEM_SEED,
        parallel=ParallelConfig(n_jobs=n_jobs),
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_streaming(problem: LinkageProblem) -> RunOutcome:
    calibrator = CompactHammingLinker.record_level(
        threshold=THRESHOLD, k=K, seed=PROBLEM_SEED
    )
    encoder = calibrator.calibrate(problem.dataset_a, problem.dataset_b)
    streaming = StreamingLinker(encoder, threshold=THRESHOLD, k=K, seed=PROBLEM_SEED)
    for values in problem.dataset_a.value_rows():
        streaming.insert(values)
    matches: set[tuple[int, int]] = set()
    n_candidates = 0
    for j, values in enumerate(problem.dataset_b.value_rows()):
        n_candidates += len(streaming._lsh.query(streaming.encoder.encode(values)))
        for record_id, __ in streaming.query(values):
            matches.add((record_id, j))
    return matches, n_candidates


def _run_bfh(problem: LinkageProblem) -> RunOutcome:
    linker = BfHLinker(
        {"f1": 45, "f2": 45, "f3": 90}, n_attributes=4, seed=PROBLEM_SEED
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_canopy(problem: LinkageProblem,
                verify: VerifyConfig | None = None) -> RunOutcome:
    linker = CanopyLinker(threshold=THRESHOLD, seed=PROBLEM_SEED, verify=verify)
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_harra(problem: LinkageProblem) -> RunOutcome:
    linker = HarraLinker(threshold=0.35, k=5, n_tables=30, seed=PROBLEM_SEED)
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_smeb(problem: LinkageProblem) -> RunOutcome:
    linker = SMEBLinker(
        {"f1": 4.5, "f2": 4.5, "f3": 7.7}, n_attributes=4, seed=PROBLEM_SEED
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_sorted_neighborhood(problem: LinkageProblem,
                             verify: VerifyConfig | None = None) -> RunOutcome:
    linker = SortedNeighborhoodLinker(
        threshold=THRESHOLD, window=10, passes=2, seed=PROBLEM_SEED, verify=verify
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_streaming_prefilter(problem: LinkageProblem) -> RunOutcome:
    """The streaming batch-query path with the sketch prefilter enabled.

    Must reproduce ``_run_streaming``'s golden payload: ``query_batch``
    with a verify config answers exactly what per-record ``query`` does.
    """
    calibrator = CompactHammingLinker.record_level(
        threshold=THRESHOLD, k=K, seed=PROBLEM_SEED
    )
    encoder = calibrator.calibrate(problem.dataset_a, problem.dataset_b)
    streaming = StreamingLinker(
        encoder, threshold=THRESHOLD, k=K, seed=PROBLEM_SEED, verify=PREFILTER
    )
    n_candidates = 0
    for values in problem.dataset_a.value_rows():
        streaming.insert(values)
    rows_b = list(problem.dataset_b.value_rows())
    for values in rows_b:
        n_candidates += len(streaming._lsh.query(streaming.encoder.encode(values)))
    matches: set[tuple[int, int]] = set()
    for j, per_query in enumerate(streaming.query_batch(rows_b)):
        for record_id, __ in per_query:
            matches.add((record_id, j))
    return matches, n_candidates


#: Every golden-pinned linker run, by name.  n_jobs variants prove the
#: runner's sharding is invisible in the output.
RUNNERS: dict[str, Callable[[LinkageProblem], RunOutcome]] = {
    "cbv-record-n1": _run_cbv_record,
    "cbv-record-n2": lambda p: _run_cbv_record(p, n_jobs=2),
    "cbv-record-chunked": lambda p: _run_cbv_record(p, max_chunk_pairs=2048),
    "cbv-record-prefilter-n1": lambda p: _run_cbv_record(p, verify=PREFILTER),
    "cbv-record-prefilter-n2": lambda p: _run_cbv_record(
        p, n_jobs=2, verify=PREFILTER
    ),
    "cbv-record-prefilter-chunked": lambda p: _run_cbv_record(
        p, max_chunk_pairs=2048, verify=PREFILTER
    ),
    "cbv-rule-n1": _run_cbv_rule,
    "cbv-rule-n2": lambda p: _run_cbv_rule(p, n_jobs=2),
    "streaming": _run_streaming,
    "streaming-prefilter": _run_streaming_prefilter,
    "bfh": _run_bfh,
    "canopy": _run_canopy,
    "canopy-prefilter": lambda p: _run_canopy(p, verify=PREFILTER),
    "harra": _run_harra,
    "smeb": _run_smeb,
    "sorted-neighborhood": _run_sorted_neighborhood,
    "sorted-neighborhood-prefilter": lambda p: _run_sorted_neighborhood(
        p, verify=PREFILTER
    ),
}

#: Prefilter-on runner -> the plain runner whose golden payload it must
#: equal (the byte-identity contract of the sketch prefilter).
PREFILTER_TWINS = {
    "cbv-record-prefilter-n1": "cbv-record-n1",
    "cbv-record-prefilter-n2": "cbv-record-n2",
    "cbv-record-prefilter-chunked": "cbv-record-chunked",
    "streaming-prefilter": "streaming",
    "canopy-prefilter": "canopy",
    "sorted-neighborhood-prefilter": "sorted-neighborhood",
}


def outcome_payload(outcome: RunOutcome) -> dict[str, object]:
    """JSON-stable form of one run outcome."""
    matches, n_candidates = outcome
    return {
        "n_candidates": int(n_candidates),
        "n_matches": len(matches),
        "matches": sorted([int(a), int(b)] for a, b in matches),
    }


def regenerate() -> None:
    problem = make_problem()
    payload = {name: outcome_payload(run(problem)) for name, run in RUNNERS.items()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


if __name__ == "__main__":
    regenerate()
    print(f"wrote {GOLDEN_PATH}")  # noqa: reprolint is src-only; this is a test tool
