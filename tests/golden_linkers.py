"""Golden-parity harness: fixed-seed runs of every linker in the repo.

One place defines the linkage problem and one canonical configuration per
linker; ``tests/test_golden_parity.py`` asserts that each run reproduces
the committed ``tests/data/golden_parity.json`` byte for byte (matches and
candidate counts).  The JSON was captured from the pre-pipeline
implementations, so these tests prove the stage-pipeline refactor changed
*no* observable linkage behaviour.

Regenerate (only when a change is *supposed* to alter linkage output)::

    PYTHONPATH=src:tests python -m golden_linkers
"""

from __future__ import annotations

import json
from collections.abc import Callable
from pathlib import Path

from repro.baselines import (
    BfHLinker,
    CanopyLinker,
    HarraLinker,
    SMEBLinker,
    SortedNeighborhoodLinker,
)
from repro.core.config import NCVR_ATTRIBUTE_K
from repro.core.linker import CompactHammingLinker, StreamingLinker
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.data.pairs import LinkageProblem
from repro.perf import ParallelConfig
from repro.rules.parser import parse_rule

PROBLEM_N = 200
PROBLEM_SEED = 7
THRESHOLD = 4
K = 30
NCVR_RULE = "(f1<=4) & (f2<=4) & (f3<=8)"
GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "golden_parity.json"

#: (matches, n_candidates) of one linker run.
RunOutcome = tuple[set[tuple[int, int]], int]


def make_problem() -> LinkageProblem:
    """The shared fixed-seed NCVR PL linkage problem."""
    return build_linkage_problem(
        NCVRGenerator(), PROBLEM_N, scheme_pl(), seed=PROBLEM_SEED
    )


def _run_cbv_record(problem: LinkageProblem, n_jobs: int = 1,
                    max_chunk_pairs: int | None = None) -> RunOutcome:
    linker = CompactHammingLinker.record_level(
        threshold=THRESHOLD,
        k=K,
        seed=PROBLEM_SEED,
        parallel=ParallelConfig(n_jobs=n_jobs),
        max_chunk_pairs=max_chunk_pairs,
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_cbv_rule(problem: LinkageProblem, n_jobs: int = 1) -> RunOutcome:
    linker = CompactHammingLinker.rule_aware(
        parse_rule(NCVR_RULE),
        k=NCVR_ATTRIBUTE_K,
        seed=PROBLEM_SEED,
        parallel=ParallelConfig(n_jobs=n_jobs),
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_streaming(problem: LinkageProblem) -> RunOutcome:
    calibrator = CompactHammingLinker.record_level(
        threshold=THRESHOLD, k=K, seed=PROBLEM_SEED
    )
    encoder = calibrator.calibrate(problem.dataset_a, problem.dataset_b)
    streaming = StreamingLinker(encoder, threshold=THRESHOLD, k=K, seed=PROBLEM_SEED)
    for values in problem.dataset_a.value_rows():
        streaming.insert(values)
    matches: set[tuple[int, int]] = set()
    n_candidates = 0
    for j, values in enumerate(problem.dataset_b.value_rows()):
        n_candidates += len(streaming._lsh.query(streaming.encoder.encode(values)))
        for record_id, __ in streaming.query(values):
            matches.add((record_id, j))
    return matches, n_candidates


def _run_bfh(problem: LinkageProblem) -> RunOutcome:
    linker = BfHLinker(
        {"f1": 45, "f2": 45, "f3": 90}, n_attributes=4, seed=PROBLEM_SEED
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_canopy(problem: LinkageProblem) -> RunOutcome:
    linker = CanopyLinker(threshold=THRESHOLD, seed=PROBLEM_SEED)
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_harra(problem: LinkageProblem) -> RunOutcome:
    linker = HarraLinker(threshold=0.35, k=5, n_tables=30, seed=PROBLEM_SEED)
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_smeb(problem: LinkageProblem) -> RunOutcome:
    linker = SMEBLinker(
        {"f1": 4.5, "f2": 4.5, "f3": 7.7}, n_attributes=4, seed=PROBLEM_SEED
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


def _run_sorted_neighborhood(problem: LinkageProblem) -> RunOutcome:
    linker = SortedNeighborhoodLinker(
        threshold=THRESHOLD, window=10, passes=2, seed=PROBLEM_SEED
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return result.matches, result.n_candidates


#: Every golden-pinned linker run, by name.  n_jobs variants prove the
#: runner's sharding is invisible in the output.
RUNNERS: dict[str, Callable[[LinkageProblem], RunOutcome]] = {
    "cbv-record-n1": _run_cbv_record,
    "cbv-record-n2": lambda p: _run_cbv_record(p, n_jobs=2),
    "cbv-record-chunked": lambda p: _run_cbv_record(p, max_chunk_pairs=2048),
    "cbv-rule-n1": _run_cbv_rule,
    "cbv-rule-n2": lambda p: _run_cbv_rule(p, n_jobs=2),
    "streaming": _run_streaming,
    "bfh": _run_bfh,
    "canopy": _run_canopy,
    "harra": _run_harra,
    "smeb": _run_smeb,
    "sorted-neighborhood": _run_sorted_neighborhood,
}


def outcome_payload(outcome: RunOutcome) -> dict[str, object]:
    """JSON-stable form of one run outcome."""
    matches, n_candidates = outcome
    return {
        "n_candidates": int(n_candidates),
        "n_matches": len(matches),
        "matches": sorted([int(a), int(b)] for a, b in matches),
    }


def regenerate() -> None:
    problem = make_problem()
    payload = {name: outcome_payload(run(problem)) for name, run in RUNNERS.items()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


if __name__ == "__main__":
    regenerate()
    print(f"wrote {GOLDEN_PATH}")  # noqa: reprolint is src-only; this is a test tool
