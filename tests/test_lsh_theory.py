"""Tests for repro.hamming.theory — Equation (2) against the paper's numbers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hamming.theory import (
    base_success_probability,
    composite_collision_probability,
    hamming_lsh_parameters,
    optimal_table_count,
    recall_lower_bound,
)


class TestBaseSuccessProbability:
    def test_definition(self):
        assert base_success_probability(4, 120) == pytest.approx(1 - 4 / 120)

    def test_zero_threshold(self):
        assert base_success_probability(0, 100) == 1.0

    def test_full_threshold(self):
        assert base_success_probability(100, 100) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            base_success_probability(5, 0)
        with pytest.raises(ValueError):
            base_success_probability(-1, 10)
        with pytest.raises(ValueError):
            base_success_probability(11, 10)


class TestPaperTableCounts:
    """The L values quoted in Section 6.2 for scheme PL."""

    def test_ncvr_pl_gives_l6(self):
        __, tables = hamming_lsh_parameters(threshold=4, n_bits=120, k=30, delta=0.1)
        assert tables == 6

    def test_dblp_pl_gives_l3(self):
        __, tables = hamming_lsh_parameters(threshold=4, n_bits=267, k=30, delta=0.1)
        assert tables == 3

    def test_formula_is_equation_2(self):
        p = base_success_probability(4, 120) ** 30
        expected = math.ceil(math.log(0.1) / math.log(1 - p))
        assert optimal_table_count(p, 0.1) == expected


class TestOptimalTableCount:
    def test_certain_collision_needs_one_table(self):
        assert optimal_table_count(1.0) == 1

    def test_zero_probability_rejected(self):
        with pytest.raises(ValueError):
            optimal_table_count(0.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            optimal_table_count(0.5, delta=0.0)
        with pytest.raises(ValueError):
            optimal_table_count(0.5, delta=1.0)

    @given(
        st.floats(min_value=1e-4, max_value=0.999),
        st.floats(min_value=0.01, max_value=0.5),
    )
    def test_guarantee_holds(self, p, delta):
        """L from Equation (2) always achieves recall >= 1 - delta."""
        tables = optimal_table_count(p, delta)
        assert recall_lower_bound(p, tables) >= 1.0 - delta - 1e-12

    @given(
        st.floats(min_value=1e-3, max_value=0.999),
        st.floats(min_value=0.01, max_value=0.5),
    )
    def test_l_is_minimal(self, p, delta):
        """One table fewer would violate the guarantee (L is optimal)."""
        tables = optimal_table_count(p, delta)
        if tables > 1:
            assert recall_lower_bound(p, tables - 1) < 1.0 - delta + 1e-9


class TestCompositeProbability:
    def test_powers(self):
        assert composite_collision_probability(0.5, 3) == pytest.approx(0.125)

    def test_k_one_identity(self):
        assert composite_collision_probability(0.7, 1) == pytest.approx(0.7)

    def test_invalid(self):
        with pytest.raises(ValueError):
            composite_collision_probability(1.5, 2)
        with pytest.raises(ValueError):
            composite_collision_probability(0.5, 0)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(1, 50))
    def test_monotone_in_k(self, p, k):
        assert composite_collision_probability(p, k + 1) <= composite_collision_probability(p, k)


class TestRecallBound:
    def test_monotone_in_tables(self):
        assert recall_lower_bound(0.3, 5) > recall_lower_bound(0.3, 2)

    def test_single_table(self):
        assert recall_lower_bound(0.25, 1) == pytest.approx(0.25)

    def test_invalid_tables(self):
        with pytest.raises(ValueError):
            recall_lower_bound(0.5, 0)
