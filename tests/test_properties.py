"""Cross-module invariants, property-based.

These tie the layers together: whatever strings and parameters hypothesis
draws, the structural identities the paper's pipeline relies on must hold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cvector import CVectorEncoder
from repro.core.encoder import RecordEncoder
from repro.core.qgram import QGramScheme, qgram_vector, qgrams
from repro.hamming.lsh import HammingLSH
from repro.text.edit_distance import levenshtein

WORD = st.text(alphabet="ABCDEFGHIJ", min_size=2, max_size=10)
RECORD = st.tuples(WORD, WORD, WORD)


def _encoder(seed=0):
    return RecordEncoder(
        [CVectorEncoder(12, seed=seed), CVectorEncoder(16, seed=seed + 1),
         CVectorEncoder(20, seed=seed + 2)],
        names=["f1", "f2", "f3"],
    )


class TestEncoderIdentities:
    @given(RECORD, RECORD)
    @settings(max_examples=60)
    def test_record_distance_is_sum_of_attribute_distances(self, rec_a, rec_b):
        """Concatenation makes the record-level Hamming distance decompose
        exactly into per-attribute distances."""
        encoder = _encoder()
        matrix = encoder.encode_dataset([rec_a, rec_b])
        total = matrix.row(0).hamming(matrix.row(1))
        parts = encoder.attribute_distances(
            matrix, np.asarray([0]), matrix, np.asarray([1])
        )
        assert total == sum(int(d[0]) for d in parts.values())

    @given(RECORD)
    @settings(max_examples=30)
    def test_dataset_encoding_equals_single_encoding(self, record):
        encoder = _encoder()
        assert encoder.encode_dataset([record]).row(0) == encoder.encode(record)

    @given(WORD, st.integers(0, 50))
    @settings(max_examples=60)
    def test_cvector_popcount_bounded_by_qgrams(self, value, seed):
        """Hashing can only merge q-grams: |ones| <= |U_s|."""
        enc = CVectorEncoder(15, seed=seed)
        assert enc.encode(value).count() <= len(enc.scheme.index_set(value))


class TestErrorDistanceBounds:
    """The §5.1 bounds, generalised to q = 3 ('hold for any q >= 2')."""

    @given(
        st.text(alphabet="ABCDEFGHIJ", min_size=4, max_size=12),
        st.integers(0, 9),
        st.data(),
    )
    @settings(max_examples=80)
    def test_substitution_bound_2q(self, s, letter_idx, data):
        scheme = QGramScheme(q=3)
        pos = data.draw(st.integers(0, len(s) - 1))
        replacement = "ABCDEFGHIJ"[letter_idx]
        perturbed = s[:pos] + replacement + s[pos + 1 :]
        dist = scheme.vector(s).hamming(scheme.vector(perturbed))
        assert dist <= 2 * 3  # alpha = 2q for substitutions

    @given(st.text(alphabet="ABCDEFGHIJ", min_size=4, max_size=12), st.data())
    @settings(max_examples=80)
    def test_delete_bound_2q_minus_1(self, s, data):
        scheme = QGramScheme(q=3)
        pos = data.draw(st.integers(0, len(s) - 1))
        perturbed = s[:pos] + s[pos + 1 :]
        dist = scheme.vector(s).hamming(scheme.vector(perturbed))
        assert dist <= 2 * 3 - 1  # alpha = 2q - 1 for delete/insert

    @given(WORD, WORD)
    @settings(max_examples=60)
    def test_hamming_bounded_by_4_times_edit_distance(self, s1, s2):
        """u_H <= alpha * u_E with alpha <= 4 for bigrams (Equation 3)."""
        dist_h = qgram_vector(s1).hamming(qgram_vector(s2))
        dist_e = levenshtein(s1, s2)
        assert dist_h <= 4 * dist_e

    @given(WORD)
    @settings(max_examples=30)
    def test_qgram_count_consistency(self, s):
        scheme = QGramScheme()
        assert scheme.count(s) == len(qgrams(s))


class TestPackedKernelParity:
    """The packed ``bitwise_count`` kernels agree with the per-pair
    ``BitVector.hamming`` reference at word-boundary widths (1 / 63 / 64 /
    65 bits — below, at, and just past one ``uint64`` word)."""

    WIDTHS = (1, 63, 64, 65)
    N_ROWS = 8

    def _pair(self, seed, n_bits):
        from repro.hamming.bitmatrix import scatter_bits

        rng = np.random.default_rng(seed)
        matrices = []
        for __ in range(2):
            mask = rng.random((self.N_ROWS, n_bits)) < 0.4
            rows, bits = np.nonzero(mask)
            matrices.append(scatter_bits(self.N_ROWS, n_bits, rows, bits))
        return matrices

    @given(st.integers(0, 10_000), st.sampled_from(WIDTHS))
    @settings(max_examples=40, deadline=None)
    def test_hamming_packed_matches_bitvector(self, seed, n_bits):
        from repro.hamming.distance import hamming_packed

        matrix_a, matrix_b = self._pair(seed, n_bits)
        got = hamming_packed(matrix_a.words, matrix_b.words)
        want = [
            matrix_a.row(i).hamming(matrix_b.row(i)) for i in range(self.N_ROWS)
        ]
        assert got.tolist() == want

    @given(st.integers(0, 10_000), st.sampled_from(WIDTHS))
    @settings(max_examples=40, deadline=None)
    def test_hamming_packed_broadcast_row_vs_matrix(self, seed, n_bits):
        """The ``(n_words,)`` vs ``(n, n_words)`` broadcast path."""
        from repro.hamming.distance import hamming_packed

        matrix_a, matrix_b = self._pair(seed, n_bits)
        got = hamming_packed(matrix_a.words[0], matrix_b.words)
        want = [
            matrix_a.row(0).hamming(matrix_b.row(j)) for j in range(self.N_ROWS)
        ]
        assert got.tolist() == want

    @given(st.integers(0, 10_000), st.sampled_from(WIDTHS), st.data())
    @settings(max_examples=40, deadline=None)
    def test_masked_hamming_rows_matches_bit_loop(self, seed, n_bits, data):
        from repro.hamming.distance import masked_hamming_rows

        matrix_a, matrix_b = self._pair(seed, n_bits)
        start = data.draw(st.integers(0, n_bits - 1))
        stop = data.draw(st.integers(start + 1, n_bits))
        rows = np.arange(self.N_ROWS, dtype=np.int64)
        got = masked_hamming_rows(
            matrix_a.words, rows, matrix_b.words, rows, start, stop
        )
        want = [
            sum(
                matrix_a.get_bit(i, bit) != matrix_b.get_bit(i, bit)
                for bit in range(start, stop)
            )
            for i in range(self.N_ROWS)
        ]
        assert got.tolist() == want


class TestLSHInvariants:
    @given(st.integers(0, 10_000), st.integers(2, 12))
    @settings(max_examples=20, deadline=None)
    def test_matches_are_candidate_subset_and_within_threshold(self, seed, k):
        rng = np.random.default_rng(seed)
        from repro.hamming.bitmatrix import scatter_bits

        mask = rng.random((30, 64)) < 0.3
        rows, bits = np.nonzero(mask)
        matrix = scatter_bits(30, 64, rows, bits)
        lsh = HammingLSH(n_bits=64, k=k, threshold=6, n_tables=4, seed=seed)
        lsh.index(matrix)
        cand_a, cand_b = lsh.candidate_pairs(matrix)
        rows_a, rows_b, dists = lsh.match(matrix, matrix)
        candidates = set(zip(cand_a.tolist(), cand_b.tolist()))
        matches = set(zip(rows_a.tolist(), rows_b.tolist()))
        assert matches <= candidates
        assert (dists <= 6).all()

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_streaming_equals_bulk_candidates(self, seed):
        rng = np.random.default_rng(seed)
        from repro.hamming.bitmatrix import scatter_bits

        mask = rng.random((20, 40)) < 0.3
        rows, bits = np.nonzero(mask)
        matrix = scatter_bits(20, 40, rows, bits)
        bulk = HammingLSH(n_bits=40, k=4, n_tables=3, seed=seed)
        bulk.index(matrix)
        stream = HammingLSH(n_bits=40, k=4, n_tables=3, seed=seed)
        for i in range(20):
            stream.insert(matrix.row(i), i)
        for i in range(20):
            assert sorted(bulk.query(matrix.row(i))) == sorted(
                stream.query(matrix.row(i))
            )
