"""Tests for repro.baselines.bfh."""

import pytest

from repro.baselines.bfh import BfHLinker
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.evaluation.metrics import evaluate_linkage


@pytest.fixture(scope="module")
def problem():
    return build_linkage_problem(NCVRGenerator(), 250, scheme_pl(), seed=31)


class TestConfiguration:
    def test_paper_pl_table_count(self):
        """K=30, record-level theta = 4 * 45 over 2000 bits gives a small L
        (the paper reports L = 4 for its PL setting)."""
        linker = BfHLinker(
            {"f1": 45, "f2": 45, "f3": 45, "f4": 45}, n_attributes=4, k=30, seed=0
        )
        assert linker.blocking_threshold == 180
        assert 3 <= linker.computed_n_tables <= 40

    def test_explicit_blocking_threshold(self):
        linker = BfHLinker(
            {"f1": 45}, n_attributes=4, blocking_threshold=45, k=30, seed=0
        )
        assert linker.blocking_threshold == 45

    def test_unknown_attribute_rejected(self):
        with pytest.raises(KeyError):
            BfHLinker({"f9": 45}, n_attributes=4)

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ValueError):
            BfHLinker({}, n_attributes=4)


class TestLinkage:
    def test_high_completeness_on_pl(self, problem):
        linker = BfHLinker(
            {"f1": 45, "f2": 45, "f3": 45, "f4": 45},
            n_attributes=4, k=30, seed=1,
        )
        result = linker.link(problem.dataset_a, problem.dataset_b)
        quality = evaluate_linkage(
            result.matches, problem.true_matches, result.n_candidates,
            problem.comparison_space,
        )
        assert quality.pairs_completeness >= 0.85
        assert quality.reduction_ratio >= 0.9

    def test_matches_respect_attribute_thresholds(self, problem):
        linker = BfHLinker(
            {"f1": 45, "f2": 45, "f3": 45, "f4": 45},
            n_attributes=4, k=30, seed=2,
        )
        result = linker.link(problem.dataset_a, problem.dataset_b)
        for name, threshold in linker.attribute_thresholds.items():
            assert (result.attribute_distances[name] <= threshold).all()

    def test_timings_reported(self, problem):
        linker = BfHLinker({"f1": 45}, n_attributes=4, k=20, n_tables=2, seed=3)
        result = linker.link(problem.dataset_a, problem.dataset_b)
        assert {"embed", "index", "match"} == set(result.timings)

    def test_unconstrained_attributes_pass_through(self, problem):
        """Thresholding only f1 yields at least as many matches as all four."""
        loose = BfHLinker({"f1": 45}, n_attributes=4, k=30, n_tables=6, seed=4)
        tight = BfHLinker(
            {"f1": 45, "f2": 45, "f3": 45, "f4": 45},
            n_attributes=4, k=30, n_tables=6, seed=4,
        )
        res_loose = loose.link(problem.dataset_a, problem.dataset_b)
        res_tight = tight.link(problem.dataset_a, problem.dataset_b)
        assert res_tight.matches <= res_loose.matches
