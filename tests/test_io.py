"""Tests for repro.data.io — CSV round-trips."""

import pytest

from repro.data import NCVRGenerator
from repro.data.io import read_dataset, write_dataset, write_matches


@pytest.fixture
def dataset():
    return NCVRGenerator().generate(50, seed=3)


class TestRoundTrip:
    def test_write_then_read_preserves_everything(self, dataset, tmp_path):
        path = tmp_path / "voters.csv"
        write_dataset(dataset, path)
        loaded = read_dataset(path)
        assert loaded.schema.names == dataset.schema.names
        assert [r.record_id for r in loaded] == [r.record_id for r in dataset]
        assert loaded.value_rows() == dataset.value_rows()

    def test_id_column_autodetected(self, dataset, tmp_path):
        path = tmp_path / "voters.csv"
        write_dataset(dataset, path)
        loaded = read_dataset(path)
        assert "id" not in loaded.schema.names

    def test_explicit_attribute_subset(self, dataset, tmp_path):
        path = tmp_path / "voters.csv"
        write_dataset(dataset, path)
        loaded = read_dataset(path, attributes=["LastName", "Town"])
        assert loaded.schema.names == ("LastName", "Town")
        assert loaded[0].values == (dataset[0].values[1], dataset[0].values[3])


class TestReadValidation:
    def test_missing_column_rejected(self, dataset, tmp_path):
        path = tmp_path / "voters.csv"
        write_dataset(dataset, path)
        with pytest.raises(ValueError, match="lacks columns"):
            read_dataset(path, attributes=["Nope"])

    def test_missing_id_column_rejected(self, dataset, tmp_path):
        path = tmp_path / "voters.csv"
        write_dataset(dataset, path)
        with pytest.raises(ValueError, match="id column"):
            read_dataset(path, id_column="uuid")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("id,Name\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_dataset(path)

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            read_dataset(path)


class TestNormalisation:
    def test_values_normalised_on_read(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text("id,Name\nr1,\" o'brien, jr. \"\n")
        loaded = read_dataset(path)
        assert loaded[0].values == ("OBRIEN JR",)

    def test_raw_mode(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text("id,Name\nr1,miXed\n")
        loaded = read_dataset(path, normalize_values=False)
        assert loaded[0].values == ("miXed",)

    def test_missing_cell_becomes_empty(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("id,A,B\nr1,X,\n")
        loaded = read_dataset(path)
        assert loaded[0].values == ("X", "")


class TestWriteMatches:
    def test_matches_written_with_ids(self, dataset, tmp_path):
        path = tmp_path / "matches.csv"
        count = write_matches({(0, 1), (2, 3)}, dataset, dataset, path)
        assert count == 2
        lines = path.read_text().splitlines()
        assert lines[0] == "id_a,id_b"
        assert f"{dataset[0].record_id},{dataset[1].record_id}" in lines
