"""Tests for repro.core.sizing — Lemma 1 and Theorem 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sizing import (
    expected_collisions,
    expected_set_positions,
    optimal_cvector_size,
    record_size,
    size_attribute,
)


class TestLemma1:
    def test_expected_ones_formula(self):
        # E[v] = m (1 - (1 - 1/m)^b), Equation (6).
        assert expected_set_positions(5.0, 15) == pytest.approx(
            15 * (1 - (1 - 1 / 15) ** 5)
        )

    def test_collisions_complement(self):
        b, m = 7.0, 20
        assert expected_collisions(b, m) == pytest.approx(b - expected_set_positions(b, m))

    def test_zero_grams(self):
        assert expected_set_positions(0.0, 10) == 0.0
        assert expected_collisions(0.0, 10) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_set_positions(5.0, 0)
        with pytest.raises(ValueError):
            expected_set_positions(-1.0, 10)

    @given(st.floats(min_value=0.5, max_value=100), st.integers(1, 2000))
    def test_collisions_nonnegative_and_bounded(self, b, m):
        c = expected_collisions(b, m)
        assert 0.0 <= c <= b

    @given(st.floats(min_value=1, max_value=50), st.integers(2, 500))
    def test_more_slots_fewer_collisions(self, b, m):
        assert expected_collisions(b, m + 1) <= expected_collisions(b, m) + 1e-12

    def test_monte_carlo_agreement(self):
        """Lemma 1's expectation matches simulated uniform hashing."""
        rng = np.random.default_rng(0)
        b, m, trials = 10, 30, 4000
        collisions = [
            b - len(set(rng.integers(0, m, size=b).tolist())) for __ in range(trials)
        ]
        assert np.mean(collisions) == pytest.approx(expected_collisions(b, m), abs=0.05)


class TestTheorem1:
    def test_table3_ncvr(self):
        assert [optimal_cvector_size(b) for b in (5.1, 5.0, 20.0, 7.2)] == [15, 15, 68, 22]

    def test_table3_dblp(self):
        assert [optimal_cvector_size(b) for b in (4.8, 6.2, 64.8, 3.0)] == [14, 19, 226, 8]

    def test_record_sizes_match_paper(self):
        assert record_size([5.1, 5.0, 20.0, 7.2]) == 120
        assert record_size([4.8, 6.2, 64.8, 3.0]) == 267

    def test_paper_worked_example(self):
        # Section 5.2: b=5.1 -> 15 and b=20.0 -> 68 with rho=1, r=1/3.
        assert optimal_cvector_size(5.1, rho=1, r=1 / 3) == 15
        assert optimal_cvector_size(20.0, rho=1, r=1 / 3) == 68

    def test_smaller_r_means_larger_m(self):
        m_third = optimal_cvector_size(20.0, r=1 / 3)
        m_fifth = optimal_cvector_size(20.0, r=1 / 5)
        assert m_fifth > m_third

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            optimal_cvector_size(5.0, r=0.0)
        with pytest.raises(ValueError):
            optimal_cvector_size(5.0, r=1.0)

    def test_invalid_rho_and_b(self):
        with pytest.raises(ValueError):
            optimal_cvector_size(5.0, rho=-1)
        with pytest.raises(ValueError):
            optimal_cvector_size(0.0)

    def test_b_below_rho_still_positive(self):
        assert optimal_cvector_size(0.5, rho=1.0) >= 1

    @given(st.floats(min_value=2, max_value=100))
    @settings(max_examples=50)
    def test_sizing_keeps_collisions_proportional(self, b):
        """Theorem 1's m keeps E[c] ~ b*r/2, not literally within rho.

        The proof substitutes the fixed ratio r for b/m inside e^{-b/m},
        which makes the bound loose for larger b (even the paper's own
        b=20 -> m=68 case has E[c] ~ 2.6 > rho = 1).  What the formula
        really delivers is a fill ratio near r, i.e. expected collisions
        around b^2/(2m) ~ b*r/2 — asserted here with 25% slack.
        """
        r = 1.0 / 3.0
        m = optimal_cvector_size(b, rho=1.0, r=r)
        assert expected_collisions(b, m) <= 1.0 + 1.25 * (b * r / 2.0)

    @given(st.floats(min_value=3, max_value=100))
    @settings(max_examples=50)
    def test_r_bounds_fill_ratio(self, b):
        """b/m stays near r (the proof's substitution), up to the rho term.

        From m >= (b - rho) / (1 - e^{-r}):
        b/m <= (1 - e^{-r}) * b / (b - rho), and (1 - e^{-r}) <= r.
        """
        rho, r = 1.0, 1.0 / 3.0
        m = optimal_cvector_size(b, rho=rho, r=r)
        assert b / m <= r * b / (b - rho) + 1e-9


class TestSizingReport:
    def test_report_fields(self):
        report = size_attribute(5.1)
        assert report.m_opt == 15
        assert report.confidence == pytest.approx(2 / 3)
        assert 0 < report.fill_ratio < 1
        assert report.expected_collisions <= report.rho * 1.1 + 1e-9

    def test_report_consistency(self):
        report = size_attribute(20.0, rho=0.5, r=0.25)
        assert report.expected_ones == pytest.approx(
            expected_set_positions(20.0, report.m_opt)
        )
