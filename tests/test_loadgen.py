"""Load-generator utilities behind the async serving benchmark.

``benchmarks/common.py`` is not an installed package; the benchmark
scripts import it with ``benchmarks/`` as the working directory, so the
tests put that directory on the path the same way.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from common import poisson_arrivals, query_stream  # noqa: E402


class TestPoissonArrivals:
    def test_deterministic_for_fixed_seed(self):
        assert poisson_arrivals(100.0, 50, seed=7) == poisson_arrivals(
            100.0, 50, seed=7
        )

    def test_seed_changes_the_process(self):
        assert poisson_arrivals(100.0, 50, seed=7) != poisson_arrivals(
            100.0, 50, seed=8
        )

    def test_offsets_strictly_increasing_and_positive(self):
        offsets = poisson_arrivals(250.0, 200, seed=3)
        assert len(offsets) == 200
        assert offsets[0] > 0.0
        assert all(b > a for a, b in zip(offsets, offsets[1:]))

    def test_mean_gap_matches_rate(self):
        rate = 1000.0
        offsets = poisson_arrivals(rate, 5000, seed=11)
        mean_gap = offsets[-1] / len(offsets)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)

    def test_empty_and_validation(self):
        assert poisson_arrivals(10.0, 0, seed=1) == []
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 5, seed=1)
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, -1, seed=1)


class TestQueryStream:
    ROWS = [("A",), ("B",), ("C",), ("D",)]

    def test_deterministic_for_fixed_seed(self):
        assert query_stream(self.ROWS, 40, seed=5) == query_stream(
            self.ROWS, 40, seed=5
        )

    def test_samples_only_from_rows(self):
        stream = query_stream(self.ROWS, 100, seed=5)
        assert len(stream) == 100
        assert set(stream) <= set(self.ROWS)

    def test_with_replacement_covers_rows(self):
        stream = query_stream(self.ROWS, 200, seed=9)
        assert set(stream) == set(self.ROWS)

    def test_rejects_empty_rows(self):
        with pytest.raises(ValueError):
            query_stream([], 10, seed=1)
