"""Tests for repro.data.pairs — linkage problem construction."""

import pytest

from repro.data import (
    NCVRGenerator,
    Operation,
    build_linkage_problem,
    scheme_ph,
    scheme_pl,
)
from repro.text.edit_distance import levenshtein


@pytest.fixture(scope="module")
def problem():
    return build_linkage_problem(NCVRGenerator(), 300, scheme_pl(), seed=11)


class TestConstruction:
    def test_sizes_match(self, problem):
        assert len(problem.dataset_a) == 300
        assert len(problem.dataset_b) == 300

    def test_match_fraction_near_probability(self, problem):
        assert 0.35 <= problem.n_true_matches / 300 <= 0.65

    def test_true_matches_reference_valid_rows(self, problem):
        for row_a, row_b in problem.true_matches:
            assert 0 <= row_a < 300
            assert 0 <= row_b < 300

    def test_matched_pairs_differ_by_one_edit_total(self, problem):
        """PL applies exactly one edit across the whole record."""
        for row_a, row_b in problem.true_matches:
            rec_a = problem.dataset_a[row_a]
            rec_b = problem.dataset_b[row_b]
            total = sum(
                levenshtein(va, vb) for va, vb in zip(rec_a.values, rec_b.values)
            )
            assert total == 1

    def test_operation_log_covers_all_matches(self, problem):
        assert set(problem.operation_log) == problem.true_matches

    def test_comparison_space(self, problem):
        assert problem.comparison_space == 300 * 300

    def test_reproducible(self):
        p1 = build_linkage_problem(NCVRGenerator(), 100, scheme_pl(), seed=5)
        p2 = build_linkage_problem(NCVRGenerator(), 100, scheme_pl(), seed=5)
        assert p1.true_matches == p2.true_matches
        assert p1.dataset_b.value_rows() == p2.dataset_b.value_rows()

    def test_filler_records_unrelated(self, problem):
        matched_rows_b = {row_b for __, row_b in problem.true_matches}
        unmatched = set(range(300)) - matched_rows_b
        assert unmatched  # with p=0.5 there are filler records

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            build_linkage_problem(NCVRGenerator(), 10, scheme_pl(), match_probability=0.0)

    def test_full_match_probability(self):
        p = build_linkage_problem(NCVRGenerator(), 50, scheme_pl(), match_probability=1.0, seed=1)
        assert p.n_true_matches == 50


class TestPerOperationBreakdown:
    def test_operations_partition_matches(self, problem):
        by_op = {
            op: problem.matches_with_operation(op) for op in Operation
        }
        union = set().union(*by_op.values())
        assert union == problem.true_matches

    def test_ph_matches_have_multiple_ops(self):
        p = build_linkage_problem(NCVRGenerator(), 100, scheme_ph(), seed=13)
        for pair in p.true_matches:
            assert len(p.operation_log[pair]) == 4  # 1 + 1 + 2

    def test_ph_total_edits(self):
        p = build_linkage_problem(NCVRGenerator(), 60, scheme_ph(), seed=14)
        for row_a, row_b in p.true_matches:
            rec_a, rec_b = p.dataset_a[row_a], p.dataset_b[row_b]
            assert levenshtein(rec_a.values[0], rec_b.values[0]) <= 1
            assert levenshtein(rec_a.values[1], rec_b.values[1]) <= 1
            assert 1 <= levenshtein(rec_a.values[2], rec_b.values[2]) <= 2
            assert rec_a.values[3] == rec_b.values[3]
