"""Tests for repro.core.tuning — empirical K selection."""

import pytest

from repro.core.encoder import RecordEncoder
from repro.core.tuning import choose_k, measure_k
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.data.generators import EXPERIMENT_SCHEME


@pytest.fixture(scope="module")
def matrices():
    problem = build_linkage_problem(NCVRGenerator(), 600, scheme_pl(), seed=71)
    rows_a = problem.dataset_a.value_rows()
    rows_b = problem.dataset_b.value_rows()
    encoder = RecordEncoder.calibrated(rows_a, scheme=EXPERIMENT_SCHEME, seed=71)
    return encoder.encode_dataset(rows_a), encoder.encode_dataset(rows_b)


class TestMeasureK:
    def test_returns_time_candidates_tables(self, matrices):
        matrix_a, matrix_b = matrices
        elapsed, candidates, tables = measure_k(matrix_a, matrix_b, k=20, threshold=4, seed=1)
        assert elapsed > 0
        assert candidates > 0
        assert tables >= 1

    def test_larger_k_fewer_candidates(self, matrices):
        matrix_a, matrix_b = matrices
        __, few_selective, __ = measure_k(matrix_a, matrix_b, k=8, threshold=4, seed=1)
        __, very_selective, __ = measure_k(matrix_a, matrix_b, k=35, threshold=4, seed=1)
        assert very_selective <= few_selective


class TestChooseK:
    def test_selection_structure(self, matrices):
        matrix_a, matrix_b = matrices
        selection = choose_k(
            matrix_a, matrix_b, threshold=4, k_values=(10, 20, 30), seed=2
        )
        assert selection.best_k in (10, 20, 30)
        assert len(selection.candidates) == 3
        assert selection.by_k(20).k == 20
        best = selection.by_k(selection.best_k)
        assert all(best.estimated_seconds <= c.estimated_seconds for c in selection.candidates)

    def test_unknown_k_lookup(self, matrices):
        matrix_a, matrix_b = matrices
        selection = choose_k(matrix_a, matrix_b, threshold=4, k_values=(15,), seed=2)
        with pytest.raises(KeyError):
            selection.by_k(99)

    def test_validation(self, matrices):
        matrix_a, matrix_b = matrices
        with pytest.raises(ValueError):
            choose_k(matrix_a, matrix_b, threshold=4, k_values=())
        with pytest.raises(ValueError):
            choose_k(matrix_a, matrix_b, threshold=matrix_a.n_bits)

    def test_sampling_caps_work(self, matrices):
        matrix_a, matrix_b = matrices
        selection = choose_k(
            matrix_a, matrix_b, threshold=4, k_values=(20,), sample_size=50, seed=3
        )
        assert selection.candidates[0].sample_candidates >= 0
