"""Tests for the whole-program phase of reprolint (RL101-RL105).

Fixtures are small package trees written to tmp_path with real
``__init__.py`` chains, so module-name derivation, cross-module
resolution and the import graph behave exactly as they do on ``src/``.
The architecture-contract tests also exercise the *shipped*
``[tool.reprolint.architecture]`` table from pyproject.toml against a
deliberate violation (``repro.perf`` importing ``repro.baselines``), and
the self-hosting tests assert the real tree stays clean with every
whole-program rule enabled.
"""

import ast
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import LintConfig, lint_paths, load_config
from repro.analysis.config import ArchitectureConfig
from repro.analysis.project import (
    ModuleSummary,
    ProjectModel,
    extract_module,
    module_name_for,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Miniature stage vocabulary + context mirroring repro.pipeline, so the
#: RL104 fixtures resolve kinds the same way the real tree does.
PIPELINE_STAGE = """
    class PipelineStage:
        kind = "stage"

    class CalibrateStage(PipelineStage):
        kind = "calibrate"

    class EmbedStage(PipelineStage):
        kind = "embed"

    class BlockStage(PipelineStage):
        kind = "block"

    class CandidateStage(PipelineStage):
        kind = "candidates"

    class VerifyStage(PipelineStage):
        kind = "verify"

    class ClassifyStage(PipelineStage):
        kind = "classify"
"""

PIPELINE_CONTEXT = """
    from dataclasses import dataclass, field

    @dataclass
    class PipelineContext:
        rows_a: list
        rows_b: list
        parallel: object = None
        encoder: object = None
        embedded_a: object = None
        embedded_b: object = None
        blocker: object = None
        cand_a: object = None
        cand_b: object = None
        out_a: object = None
        counters: dict = field(default_factory=dict)
        extras: dict = field(default_factory=dict)
"""


def make_tree(tmp_path, files):
    """Write dedented file contents, creating package __init__ chains."""
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return tmp_path


def select_rules(*rule_ids, architecture=None):
    return LintConfig(
        select=tuple(rule_ids),
        architecture=architecture or ArchitectureConfig(),
    )


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


class TestModuleNames:
    def test_package_chain(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/core/__init__.py": "",
                "src/repro/core/linker.py": "X: int = 1\n",
            },
        )
        assert module_name_for(tmp_path / "src/repro/core/linker.py") == "repro.core.linker"
        assert module_name_for(tmp_path / "src/repro/core/__init__.py") == "repro.core"

    def test_bare_module_outside_packages(self, tmp_path):
        (tmp_path / "script.py").write_text("X: int = 1\n")
        assert module_name_for(tmp_path / "script.py") == "script"


class TestModelExtraction:
    def _summary(self, code, name="repro.mod", path="src/repro/mod.py"):
        tree = ast.parse(textwrap.dedent(code))
        return extract_module(name, path, tree)

    def test_import_kinds(self):
        summary = self._summary(
            """
            from typing import TYPE_CHECKING

            import numpy as np
            from repro.core import qgram

            if TYPE_CHECKING:
                from repro.hamming import bitvector

            def late():
                from repro.rules import parser
                return parser
            """
        )
        kinds = {record.target: record.kind for record in summary.imports if not record.guessed}
        assert kinds["numpy"] == "module"
        assert kinds["repro.core"] == "module"
        assert kinds["repro.hamming"] == "typing"
        assert kinds["repro.rules"] == "runtime"
        assert summary.bindings["np"] == "numpy"
        assert summary.bindings["qgram"] == "repro.core.qgram"

    def test_relative_imports_resolve(self):
        summary = self._summary(
            "from .context import PipelineContext\n",
            name="repro.pipeline.stages",
            path="src/repro/pipeline/stages.py",
        )
        targets = [record.target for record in summary.imports]
        assert "repro.pipeline.context" in targets

    def test_relative_import_from_package_init(self):
        tree = ast.parse("from .runner import LinkagePipeline\n")
        summary = extract_module(
            "repro.pipeline", "src/repro/pipeline/__init__.py", tree
        )
        assert summary.is_package
        assert summary.imports[0].target == "repro.pipeline.runner"

    def test_ctx_dataflow_and_stage_class(self):
        summary = self._summary(
            """
            class MyStage(EmbedStage):
                kind = "embed"

                def run(self, ctx) -> None:
                    ctx.embedded_a = encode(ctx.rows_a)
                    helper(ctx)

            def helper(ctx) -> None:
                ctx.counters["n"] = 1
            """
        )
        run = summary.classes["MyStage"].methods["run"]
        assert "rows_a" in run.ctx_reads
        assert "embedded_a" in run.ctx_writes
        assert run.ctx_calls == ["helper"]
        assert summary.classes["MyStage"].kind_literal == "embed"
        # Subscript store on ctx.counters is a *read* of the dict field.
        assert "counters" in summary.functions["helper"].ctx_reads

    def test_parallel_and_rng_extraction(self):
        summary = self._summary(
            """
            import numpy as np
            from repro.perf import parallel_map

            TOTALS = []

            def worker(item):
                TOTALS.append(item)
                rng = np.random.default_rng()
                return item

            def driver(items, cfg):
                return parallel_map(worker, items, cfg, initializer=setup)

            def setup():
                pass

            def seeded(seed):
                return np.random.default_rng(seed)

            def burned():
                return np.random.default_rng(1234)
            """
        )
        call = summary.parallel_calls[0]
        assert call.worker.name == "worker"
        assert call.initializer.name == "setup"
        worker = summary.functions["worker"]
        assert worker.mutations and worker.mutations[0][0] == "TOTALS"
        assert worker.rng_calls and not worker.rng_calls[0].global_state
        seeds = {c.scope: c.seed_kind for c in summary.rng_constructions}
        assert seeds == {"worker": "missing", "seeded": "name", "burned": "literal"}

    def test_stage_list_literals(self):
        summary = self._summary(
            """
            def build(self):
                stages = [Embed(), Block(), Verify()]
                stages.append(Extra())
                return stages
            """
        )
        assert [e[0] for e in summary.stage_lists[0].elements] == [
            "Embed",
            "Block",
            "Verify",
        ]

    def test_json_round_trip(self):
        source = (REPO_ROOT / "src/repro/pipeline/stages.py").read_text()
        tree = ast.parse(source)
        summary = extract_module(
            "repro.pipeline.stages", "src/repro/pipeline/stages.py", tree
        )
        restored = ModuleSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
        assert restored is not None
        assert restored.to_dict() == summary.to_dict()

    def test_stale_version_rejected(self):
        summary = self._summary("X: int = 1\n")
        payload = summary.to_dict()
        payload["version"] = -1
        assert ModuleSummary.from_dict(payload) is None


class TestRL101ImportCycles:
    def _files(self, cycle):
        imports_b = "from repro.beta import g\n" if cycle else (
            "def late():\n    from repro.beta import g\n    return g\n"
        )
        return {
            "src/repro/__init__.py": "",
            "src/repro/alpha.py": imports_b + "\n\ndef f() -> None:\n    pass\n",
            "src/repro/beta.py": "from repro.alpha import f\n\n\ndef g() -> None:\n    pass\n",
        }

    def test_module_level_cycle_detected(self, tmp_path):
        root = make_tree(tmp_path, self._files(cycle=True))
        findings = lint_paths([root], select_rules("RL101"))
        assert rule_ids(findings) == ["RL101"]
        assert "repro.alpha" in findings[0].message
        assert "repro.beta" in findings[0].message

    def test_runtime_import_breaks_cycle(self, tmp_path):
        root = make_tree(tmp_path, self._files(cycle=False))
        assert lint_paths([root], select_rules("RL101")) == []

    def test_cycle_reported_once(self, tmp_path):
        root = make_tree(tmp_path, self._files(cycle=True))
        findings = lint_paths([root, root], select_rules("RL101"))
        assert len(findings) == 1


class TestRL102Architecture:
    CONTRACT = ArchitectureConfig(
        leaf=("repro.perf",),
        allowed={"repro.perf": (), "repro.baselines": ("repro.perf",)},
        present=True,
    )

    def _tree(self, tmp_path, perf_body):
        return make_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/perf/__init__.py": "",
                "src/repro/perf/fanout.py": perf_body,
                "src/repro/baselines/__init__.py": "",
                "src/repro/baselines/harra.py": (
                    "from repro.perf.fanout import run\n\nX = run\n"
                ),
            },
        )

    def test_leaf_violation_detected(self, tmp_path):
        root = self._tree(
            tmp_path, "from repro.baselines.harra import X\n\nrun = object()\n"
        )
        findings = lint_paths(
            [root], select_rules("RL102", architecture=self.CONTRACT)
        )
        assert rule_ids(findings) == ["RL102"]
        assert "import-leaf" in findings[0].message

    def test_runtime_import_is_sanctioned(self, tmp_path):
        root = self._tree(
            tmp_path,
            "def run() -> object:\n"
            "    from repro.baselines.harra import X\n"
            "    return X\n",
        )
        assert lint_paths(
            [root], select_rules("RL102", architecture=self.CONTRACT)
        ) == []

    def test_allowed_edge_is_clean(self, tmp_path):
        root = self._tree(tmp_path, "run = object()\n")
        assert lint_paths(
            [root], select_rules("RL102", architecture=self.CONTRACT)
        ) == []

    def test_absent_table_is_silent(self, tmp_path):
        root = self._tree(
            tmp_path, "from repro.baselines.harra import X\n\nrun = object()\n"
        )
        assert lint_paths([root], select_rules("RL102")) == []

    def test_leaf_allowing_non_leaf_is_a_config_error(self, tmp_path):
        contract = ArchitectureConfig(
            leaf=("repro.perf",),
            allowed={
                "repro.perf": ("repro.baselines",),
                "repro.baselines": ("repro.perf",),
            },
            present=True,
        )
        root = self._tree(tmp_path, "run = object()\n")
        findings = lint_paths([root], select_rules("RL102", architecture=contract))
        assert rule_ids(findings) == ["RL102"]
        assert findings[0].path == "pyproject.toml"

    def test_shipped_contract_catches_deliberate_violation(self, tmp_path):
        """Acceptance: the pyproject table flags repro.perf -> repro.baselines."""
        config = load_config(REPO_ROOT / "pyproject.toml").with_overrides(
            select=["RL102"]
        )
        assert config.architecture.present
        root = self._tree(
            tmp_path, "from repro.baselines.harra import X\n\nrun = object()\n"
        )
        findings = lint_paths([root], config)
        assert rule_ids(findings) == ["RL102"]
        assert "repro.perf" in findings[0].message


class TestRL103ParallelSafety:
    def _lint(self, tmp_path, body):
        root = make_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/work.py": body,
            },
        )
        return lint_paths([root], select_rules("RL103"))

    def test_mutating_worker_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            SHARED = []

            def worker(item):
                SHARED.append(item)
                return item

            def driver(items, cfg):
                return parallel_map(worker, items, cfg)
            """,
        )
        assert rule_ids(findings) == ["RL103"]
        assert "SHARED" in findings[0].message

    def test_global_declaration_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            COUNT = 0

            def worker(item):
                global COUNT
                COUNT = COUNT + 1
                return item

            def driver(items, cfg):
                return parallel_map(worker, items, cfg)
            """,
        )
        assert rule_ids(findings) == ["RL103"]
        assert "global COUNT" in findings[0].message

    def test_unseeded_rng_in_worker_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import random

            def worker(item):
                return item + random.random()

            def driver(items, cfg):
                return parallel_map(worker, items, cfg)
            """,
        )
        assert rule_ids(findings) == ["RL103"]
        assert "random.random" in findings[0].message

    def test_local_mutation_is_clean(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            def worker(items):
                out = []
                for item in items:
                    out.append(item * 2)
                return out

            def driver(chunks, cfg):
                return parallel_map(worker, chunks, cfg)
            """,
        )
        assert findings == []

    def test_initializer_may_pin_module_state(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            _STATE = {}

            def setup(payload):
                _STATE["data"] = payload

            def worker(item):
                return _STATE["data"][item]

            def driver(items, cfg, payload):
                return parallel_map(worker, items, cfg, initializer=setup, initargs=(payload,))
            """,
        )
        assert findings == []

    def test_worker_resolved_across_modules(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/workers.py": """
                    SHARED = []

                    def worker(item):
                        SHARED.append(item)
                        return item
                """,
                "src/repro/driver.py": """
                    from repro.workers import worker

                    def run(items, cfg):
                        return parallel_map(worker, items, cfg)
                """,
            },
        )
        findings = lint_paths([root], select_rules("RL103"))
        assert rule_ids(findings) == ["RL103"]
        assert findings[0].path.endswith("workers.py")

    def test_inline_lambda_checked(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            ACC = []

            def driver(items, cfg):
                return parallel_map(lambda item: ACC.append(item), items, cfg)
            """,
        )
        assert rule_ids(findings) == ["RL103"]


class TestRL104StageContract:
    def _tree(self, tmp_path, linker_body):
        return make_tree(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/pipeline/__init__.py": "",
                "src/repro/pipeline/stage.py": PIPELINE_STAGE,
                "src/repro/pipeline/context.py": PIPELINE_CONTEXT,
                "src/repro/linker.py": linker_body,
            },
        )

    def test_missing_kind_flagged(self, tmp_path):
        root = self._tree(
            tmp_path,
            """
            from repro.pipeline.stage import PipelineStage

            class Mystery(PipelineStage):
                def run(self, ctx) -> None:
                    pass
            """,
        )
        findings = lint_paths([root], select_rules("RL104"))
        assert rule_ids(findings) == ["RL104"]
        assert "Mystery" in findings[0].message

    def test_out_of_order_stage_list_flagged(self, tmp_path):
        root = self._tree(
            tmp_path,
            """
            from repro.pipeline.stage import EmbedStage, VerifyStage

            class MyEmbed(EmbedStage):
                def run(self, ctx) -> None:
                    ctx.embedded_a = ctx.rows_a

            class MyVerify(VerifyStage):
                def run(self, ctx) -> None:
                    ctx.out_a = ctx.embedded_a

            def build():
                return [MyVerify(), MyEmbed()]
            """,
        )
        findings = lint_paths([root], select_rules("RL104"))
        assert rule_ids(findings) == ["RL104"]
        assert "ordered" in findings[0].message

    def test_appended_lists_are_out_of_scope(self, tmp_path):
        root = self._tree(
            tmp_path,
            """
            from repro.pipeline.stage import EmbedStage, VerifyStage

            class MyEmbed(EmbedStage):
                def run(self, ctx) -> None:
                    ctx.embedded_a = ctx.rows_a

            class MyVerify(VerifyStage):
                def run(self, ctx) -> None:
                    ctx.out_a = ctx.embedded_a

            def build(fancy):
                stages = [MyEmbed(), MyVerify()]
                if fancy:
                    stages.append(MyEmbed())
                return stages
            """,
        )
        assert lint_paths([root], select_rules("RL104")) == []

    def test_early_read_flagged(self, tmp_path):
        root = self._tree(
            tmp_path,
            """
            from repro.pipeline.stage import CalibrateStage

            class EagerCalibrate(CalibrateStage):
                def run(self, ctx) -> None:
                    ctx.encoder = ctx.blocker
            """,
        )
        findings = lint_paths([root], select_rules("RL104"))
        assert rule_ids(findings) == ["RL104"]
        assert "ctx.blocker" in findings[0].message
        assert "EagerCalibrate" in findings[0].message

    def test_reads_satisfied_by_earlier_writer(self, tmp_path):
        root = self._tree(
            tmp_path,
            """
            from repro.pipeline.stage import EmbedStage, VerifyStage

            class MyEmbed(EmbedStage):
                def run(self, ctx) -> None:
                    ctx.embedded_a = ctx.rows_a

            class MyVerify(VerifyStage):
                def run(self, ctx) -> None:
                    ctx.out_a = check(ctx)

            def check(ctx):
                return ctx.embedded_a
            """,
        )
        assert lint_paths([root], select_rules("RL104")) == []

    def test_unknown_context_attribute_flagged(self, tmp_path):
        root = self._tree(
            tmp_path,
            """
            from repro.pipeline.stage import EmbedStage

            class MyEmbed(EmbedStage):
                def run(self, ctx) -> None:
                    ctx.embedded_aa = ctx.rows_a
            """,
        )
        findings = lint_paths([root], select_rules("RL104"))
        assert rule_ids(findings) == ["RL104"]
        assert "embedded_aa" in findings[0].message
        assert "typo" in findings[0].message


class TestRL105SeedPropagation:
    def _lint(self, tmp_path, body):
        root = make_tree(
            tmp_path,
            {"src/repro/__init__.py": "", "src/repro/calib.py": body},
        )
        return lint_paths([root], select_rules("RL105"))

    def test_buried_literal_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import numpy as np

            def sample() -> object:
                return np.random.default_rng(1234)
            """,
        )
        assert rule_ids(findings) == ["RL105"]
        assert "1234" in findings[0].message

    def test_parameter_seed_is_clean(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import numpy as np

            def sample(seed: int) -> object:
                return np.random.default_rng(seed)
            """,
        )
        assert findings == []

    def test_config_field_seed_is_clean(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import numpy as np

            def sample(config) -> object:
                return np.random.default_rng(config.seed)
            """,
        )
        assert findings == []

    def test_literal_default_parameter_is_clean(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import numpy as np

            def sample(seed: int = 42) -> object:
                return np.random.default_rng(seed)
            """,
        )
        assert findings == []

    def test_module_level_literal_is_out_of_scope(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import numpy as np

            RNG = np.random.default_rng(7)
            """,
        )
        assert findings == []

    def test_suppression_comment_works_for_project_rules(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import numpy as np

            def sample() -> object:
                return np.random.default_rng(1234)  # reprolint: disable=RL105
            """,
        )
        assert findings == []


class TestProjectSelfHosting:
    """Acceptance: src/ lints clean with RL101-RL105 enabled."""

    def test_project_rules_clean_on_src(self):
        config = load_config(REPO_ROOT / "pyproject.toml").with_overrides(
            select=["RL101", "RL102", "RL103", "RL104", "RL105"]
        )
        findings = lint_paths([REPO_ROOT / "src"], config)
        assert findings == [], [f.format() for f in findings]

    def test_full_rule_set_clean_on_src(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config)
        assert findings == [], [f.format() for f in findings]

    def test_shipped_architecture_matches_reality(self):
        """Every allowed unit in the table actually exists in the tree."""
        config = load_config(REPO_ROOT / "pyproject.toml")
        units = set(config.architecture.allowed)
        for targets in config.architecture.allowed.values():
            units.update(targets)
        src = REPO_ROOT / "src"
        for unit in sorted(units):
            as_path = src / Path(*unit.split("."))
            assert (
                as_path.is_dir() or as_path.with_suffix(".py").is_file()
            ), f"architecture table names unknown unit {unit}"

    def test_cli_sarif_on_src_exits_zero(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                "src/",
                "--no-cache",
                "--format",
                "sarif",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["runs"][0]["results"] == []


def test_project_model_covers_real_pipeline():
    """The model sees the real stage classes and parallel call sites."""
    summaries = []
    for path in sorted((REPO_ROOT / "src/repro").rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        summaries.append(extract_module(module_name_for(path), str(path), tree))
    model = ProjectModel.from_summaries(summaries)
    stages = model.modules["repro.pipeline.stages"]
    assert stages.parallel_calls, "parallel_map call in ThresholdVerifyStage"
    verify = stages.classes["ThresholdVerifyStage"]
    assert verify.bases == ["VerifyStage"]
    chain = list(model.base_chain("repro.pipeline.stages", "ThresholdVerifyStage"))
    assert any(info.kind_literal == "verify" for _, info in chain)
    context = model.modules["repro.pipeline.context"].classes["PipelineContext"]
    assert "candidate_chunks" in context.fields
    assert "comparison_space" in context.properties
    edges = {
        target
        for source, target, _ in model.resolved_edges(("module",))
        if source == "repro.pipeline.stages"
    }
    assert "repro.perf" in edges


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
