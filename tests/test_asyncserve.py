"""Tests for the async serving front-end (repro.serve.asyncserve).

Four layers:

* **MicroBatcher mechanics** against a stub executor: timer flush of a
  single queued item, bursts larger than ``max_batch`` splitting in
  arrival order, cancellation mid-batch, expired deadlines dropped
  before they consume batch slots, bounded-queue rejection with a
  retry-after hint, and the adaptive window staying inside
  ``[min_wait_us, max_wait_us]``.
* **Parity** — answers through :class:`AsyncQueryServer` (coalesced,
  off-loop) are identical to direct ``query_batch`` calls, including
  mixed per-request ``threshold`` / ``top_k`` parameters.
* **Zero-downtime swap** — requests in flight during :meth:`swap`
  complete on the bundle they were dispatched against, later requests
  see the new bundle, and nothing is dropped or version-mixed.
* **HTTP layer** — the stdlib front-end round-trips queries, surfaces
  health/stats, and maps client errors to 400/404.
"""

import asyncio
import json
import time

import pytest

from repro.core.encoder import RecordEncoder
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.data.generators import EXPERIMENT_SCHEME
from repro.serve import AsyncQueryServer, BatcherConfig, QueryEngine
from repro.serve.asyncserve import (
    DeadlineExceededError,
    MicroBatcher,
    QueueFullError,
    serve_http,
)

SEED = 11
N = 80
THRESHOLD = 4
K = 30


@pytest.fixture(scope="module")
def problem():
    return build_linkage_problem(NCVRGenerator(), N, scheme_pl(), seed=SEED)


@pytest.fixture(scope="module")
def encoder(problem):
    rows = list(problem.dataset_a.value_rows()) + list(problem.dataset_b.value_rows())
    return RecordEncoder.calibrated(rows, scheme=EXPERIMENT_SCHEME, seed=SEED)


@pytest.fixture(scope="module")
def rows_a(problem):
    return [tuple(r) for r in problem.dataset_a.value_rows()]


@pytest.fixture(scope="module")
def rows_b(problem):
    return [tuple(r) for r in problem.dataset_b.value_rows()]


class _StubResult:
    """Echo executor result: row i answers with its integer value."""

    def __init__(self, rows):
        self._rows = rows

    def matches(self):
        return [[(int(row[0]), 0)] for row in self._rows]


def _stub_execute(calls, delay_s=0.0):
    async def execute(rows, threshold, top_k):
        calls.append((list(rows), threshold, top_k))
        if delay_s:
            await asyncio.sleep(delay_s)
        return _StubResult(rows)

    return execute


class TestMicroBatcher:
    def test_single_item_flushes_on_timer(self):
        """One queued request must not wait for the batch to fill."""
        calls = []

        async def scenario():
            batcher = MicroBatcher(
                _stub_execute(calls),
                BatcherConfig(max_batch=64, max_wait_us=5000.0, adaptive=False),
            )
            started = time.perf_counter()
            matches = await batcher.submit(("7",))
            elapsed = time.perf_counter() - started
            await batcher.close()
            return matches, elapsed

        matches, elapsed = asyncio.run(scenario())
        assert matches == [(7, 0)]
        assert elapsed < 1.0
        assert len(calls) == 1 and len(calls[0][0]) == 1

    def test_burst_splits_in_arrival_order(self):
        """A burst larger than max_batch splits into consecutive batches
        that preserve submission order across the split."""
        calls = []

        async def scenario():
            batcher = MicroBatcher(
                _stub_execute(calls), BatcherConfig(max_batch=4, max_wait_us=2000.0)
            )
            results = await asyncio.gather(
                *[batcher.submit((str(i),)) for i in range(10)]
            )
            await batcher.close()
            return results

        results = asyncio.run(scenario())
        assert results == [[(i, 0)] for i in range(10)]
        assert all(len(call[0]) <= 4 for call in calls)
        replayed = [row for call in calls for row in call[0]]
        assert replayed == [(str(i),) for i in range(10)]
        assert len(calls) >= 3  # 10 requests cannot fit in two 4-slots

    def test_coalescing_happens(self):
        """Concurrent submissions share execute calls (that is the point)."""
        calls = []

        async def scenario():
            batcher = MicroBatcher(
                _stub_execute(calls),
                BatcherConfig(max_batch=32, max_wait_us=20000.0, adaptive=False),
            )
            await asyncio.gather(*[batcher.submit((str(i),)) for i in range(16)])
            await batcher.close()

        asyncio.run(scenario())
        assert len(calls) < 16  # strictly fewer calls than requests
        assert sum(len(call[0]) for call in calls) == 16

    def test_groups_by_threshold_and_top_k(self):
        """Mixed parameters coalesce but execute as separate sub-batches."""
        calls = []

        async def scenario():
            batcher = MicroBatcher(
                _stub_execute(calls),
                BatcherConfig(max_batch=8, max_wait_us=20000.0, adaptive=False),
            )
            await asyncio.gather(
                batcher.submit(("1",)),
                batcher.submit(("2",), top_k=1),
                batcher.submit(("3",)),
                batcher.submit(("4",), threshold=9),
            )
            await batcher.close()

        asyncio.run(scenario())
        seen = {(threshold, top_k) for __, threshold, top_k in calls}
        assert seen == {(None, None), (None, 1), (9, None)}

    def test_cancellation_mid_batch_skips_only_that_request(self):
        calls = []

        async def scenario():
            batcher = MicroBatcher(
                _stub_execute(calls),
                BatcherConfig(max_batch=8, max_wait_us=50000.0, adaptive=False),
            )
            doomed = asyncio.create_task(batcher.submit(("0",)))
            survivor = asyncio.create_task(batcher.submit(("1",)))
            await asyncio.sleep(0)  # both admitted, neither flushed yet
            doomed.cancel()
            result = await survivor
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await batcher.close()
            return result

        result = asyncio.run(scenario())
        assert result == [(1, 0)]
        replayed = [row for call in calls for row in call[0]]
        assert ("0",) not in replayed  # cancelled request never dispatched
        assert ("1",) in replayed

    def test_expired_deadline_drops_before_consuming_batch_slots(self):
        calls = []

        async def scenario():
            batcher = MicroBatcher(
                _stub_execute(calls, delay_s=0.15),
                BatcherConfig(max_batch=1, max_wait_us=0.0, max_inflight_batches=1),
            )
            blocker = asyncio.create_task(batcher.submit(("0",)))
            await asyncio.sleep(0.03)  # blocker dispatched, executor busy
            doomed = asyncio.create_task(batcher.submit(("1",), deadline_s=0.01))
            survivor = asyncio.create_task(batcher.submit(("2",)))
            results = await asyncio.gather(
                blocker, doomed, survivor, return_exceptions=True
            )
            await batcher.close()
            return results

        blocker, doomed, survivor = asyncio.run(scenario())
        assert blocker == [(0, 0)]
        assert isinstance(doomed, DeadlineExceededError)
        assert doomed.waited_s >= 0.01
        assert survivor == [(2, 0)]
        replayed = [row for call in calls for row in call[0]]
        assert ("1",) not in replayed  # never reached the engine

    def test_queue_full_rejects_with_retry_after(self):
        async def scenario():
            batcher = MicroBatcher(
                _stub_execute([], delay_s=0.2),
                BatcherConfig(
                    max_batch=1,
                    max_wait_us=0.0,
                    queue_depth=2,
                    max_inflight_batches=1,
                ),
            )
            admitted = [asyncio.create_task(batcher.submit(("0",)))]
            await asyncio.sleep(0.05)  # dispatched, executor busy
            admitted += [
                asyncio.create_task(batcher.submit((str(i),))) for i in (1, 2)
            ]
            await asyncio.sleep(0)  # both enqueued: queue at capacity
            with pytest.raises(QueueFullError) as rejected:
                await batcher.submit(("9",))
            results = await asyncio.gather(*admitted)
            await batcher.close()
            return rejected.value, results, dict(batcher.stats)

        error, results, stats = asyncio.run(scenario())
        assert error.retry_after_s > 0.0
        assert error.depth == 2
        assert stats["n_rejected"] == 1.0
        assert results == [[(i, 0)] for i in range(3)]  # admitted all answered

    def test_adaptive_window_stays_within_bounds(self):
        config = BatcherConfig(max_batch=100, max_wait_us=10000.0, min_wait_us=100.0)

        async def scenario():
            batcher = MicroBatcher(_stub_execute([]), config)
            empty = batcher._effective_wait_s()
            batcher._fill_ewma = 1.0
            full = batcher._effective_wait_s()
            for __ in range(50):
                batcher._note_flush(1)
            decayed = batcher._effective_wait_s()
            for __ in range(50):
                batcher._note_flush(100)
            regrown = batcher._effective_wait_s()
            await batcher.close()
            return empty, full, decayed, regrown

        empty, full, decayed, regrown = asyncio.run(scenario())
        assert empty == pytest.approx(config.min_wait_us * 1e-6)
        assert full == pytest.approx(config.max_wait_us * 1e-6)
        assert decayed < 0.1 * full  # light load shrinks the window
        assert regrown == pytest.approx(full, rel=0.01)  # heavy load regrows it
        lo = config.min_wait_us * 1e-6
        hi = config.max_wait_us * 1e-6
        assert lo <= decayed <= hi and lo <= regrown <= hi

    def test_non_adaptive_window_is_constant(self):
        config = BatcherConfig(max_batch=10, max_wait_us=3000.0, adaptive=False)

        async def scenario():
            batcher = MicroBatcher(_stub_execute([]), config)
            batcher._note_flush(1)
            wait = batcher._effective_wait_s()
            await batcher.close()
            return wait

        assert asyncio.run(scenario()) == pytest.approx(3000.0 * 1e-6)

    def test_execute_error_propagates_to_all_requests_in_batch(self):
        async def scenario():
            async def explode(rows, threshold, top_k):
                raise RuntimeError("engine down")

            batcher = MicroBatcher(
                explode, BatcherConfig(max_batch=4, max_wait_us=1000.0)
            )
            results = await asyncio.gather(
                batcher.submit(("1",)),
                batcher.submit(("2",)),
                return_exceptions=True,
            )
            await batcher.close()
            return results, dict(batcher.stats)

        results, stats = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert stats["n_execute_errors"] >= 1.0

    def test_submit_after_close_raises(self):
        async def scenario():
            batcher = MicroBatcher(_stub_execute([]), BatcherConfig())
            await batcher.close()
            with pytest.raises(RuntimeError):
                await batcher.submit(("1",))

        asyncio.run(scenario())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BatcherConfig(max_batch=0)
        with pytest.raises(ValueError):
            BatcherConfig(max_wait_us=-1.0)
        with pytest.raises(ValueError):
            BatcherConfig(min_wait_us=10.0, max_wait_us=5.0)
        with pytest.raises(ValueError):
            BatcherConfig(queue_depth=0)
        with pytest.raises(ValueError):
            BatcherConfig(deadline_ms=0.0)
        with pytest.raises(ValueError):
            BatcherConfig(max_inflight_batches=0)


class TestAsyncQueryServerParity:
    def test_coalesced_answers_match_direct_query_batch(self, rows_a, rows_b, encoder):
        engine = QueryEngine.build(
            rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED
        )
        direct = engine.query_batch(rows_b).matches()

        async def scenario():
            async with AsyncQueryServer(
                engine, BatcherConfig(max_batch=32, max_wait_us=1000.0)
            ) as server:
                return await asyncio.gather(*[server.query(r) for r in rows_b])

        served = asyncio.run(scenario())
        assert served == direct

    def test_mixed_parameters_answered_per_request(self, rows_a, rows_b, encoder):
        engine = QueryEngine.build(
            rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED
        )
        queries = rows_b[:12]
        direct_default = engine.query_batch(queries).matches()
        direct_topk = engine.query_batch(queries, top_k=1).matches()
        direct_loose = engine.query_batch(queries, threshold=THRESHOLD + 2).matches()

        async def scenario():
            async with AsyncQueryServer(
                engine, BatcherConfig(max_batch=64, max_wait_us=5000.0)
            ) as server:
                tasks = []
                for i, row in enumerate(queries):
                    tasks.append(server.query(row))
                    tasks.append(server.query(row, top_k=1))
                    tasks.append(server.query(row, threshold=THRESHOLD + 2))
                return await asyncio.gather(*tasks)

        served = asyncio.run(scenario())
        for i in range(len(queries)):
            assert served[3 * i] == direct_default[i]
            assert served[3 * i + 1] == direct_topk[i]
            assert served[3 * i + 2] == direct_loose[i]

    def test_stats_shape(self, rows_a, rows_b, encoder):
        engine = QueryEngine.build(
            rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED
        )

        async def scenario():
            async with AsyncQueryServer(engine) as server:
                await asyncio.gather(*[server.query(r) for r in rows_b[:8]])
                return server.stats()

        stats = asyncio.run(scenario())
        assert stats["generation"] == 0
        assert stats["n_swaps"] == 0
        assert stats["counters"]["n_completed"] == 8.0
        assert stats["qps"] > 0.0
        assert 0.0 < stats["latency_s"]["p50"] <= stats["latency_s"]["p99"]
        assert stats["batch_size"]["mean"] >= 1.0
        assert stats["latency_hist"]["count"] == 8
        assert stats["engine_stats"]["n_queries"] == 8.0
        json.dumps(stats)  # the whole view must be JSON-serialisable


class TestZeroDowntimeSwap:
    def test_inflight_completes_on_old_bundle_and_new_requests_see_new(
        self, rows_a, rows_b, encoder, tmp_path
    ):
        """The swap contract: nothing dropped, nothing version-mixed."""
        old_rows = rows_a[: N // 4]
        probe = rows_a[-1]  # only indexed in the new bundle

        v1 = QueryEngine.build(old_rows, encoder, threshold=THRESHOLD, k=K, seed=SEED)
        v1.save(tmp_path / "v1")
        v2 = QueryEngine.build(rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED)
        v2.save(tmp_path / "v2")
        want_old = v1.query_batch([probe]).matches()[0]
        want_new = v2.query_batch([probe]).matches()[0]
        assert want_old != want_new  # the probe distinguishes the versions

        async def scenario():
            server = AsyncQueryServer.from_bundle(
                tmp_path / "v1", BatcherConfig(max_batch=4, max_wait_us=500.0)
            )
            # Slow the v1 engine so the first request is still in flight
            # when the swap lands.
            original = server.engine.query_batch

            def slow_query_batch(rows, threshold=None, top_k=None):
                time.sleep(0.2)
                return original(rows, threshold, top_k)

            server.engine.query_batch = slow_query_batch
            inflight = asyncio.create_task(server.query(probe))
            await asyncio.sleep(0.05)  # dispatched against v1, executing
            generation = await server.swap(tmp_path / "v2")
            after = await server.query(probe)
            before = await inflight
            stats = server.stats()
            await server.close()
            return before, after, generation, stats

        before, after, generation, stats = asyncio.run(scenario())
        assert before == want_old  # in-flight request answered by v1
        assert after == want_new  # post-swap request answered by v2
        assert generation == 1
        assert stats["n_swaps"] == 1
        assert stats["counters"].get("n_deadline_missed", 0.0) == 0.0
        assert stats["counters"]["n_completed"] == 2.0  # nothing dropped

    def test_swap_under_load_drops_nothing_and_never_mixes_versions(
        self, rows_a, rows_b, encoder, tmp_path
    ):
        old_rows = rows_a[: N // 4]
        v1 = QueryEngine.build(old_rows, encoder, threshold=THRESHOLD, k=K, seed=SEED)
        v1.save(tmp_path / "v1")
        v2 = QueryEngine.build(rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED)
        v2.save(tmp_path / "v2")
        stream = rows_a[-20:]
        want_v1 = v1.query_batch(stream).matches()
        want_v2 = v2.query_batch(stream).matches()

        async def scenario():
            server = AsyncQueryServer.from_bundle(
                tmp_path / "v1", BatcherConfig(max_batch=4, max_wait_us=500.0)
            )
            queries = [
                asyncio.create_task(server.query(row)) for row in stream[:10]
            ]
            await server.swap(tmp_path / "v2")
            queries += [
                asyncio.create_task(server.query(row)) for row in stream[10:]
            ]
            answers = await asyncio.gather(*queries)
            await server.close()
            return answers

        answers = asyncio.run(scenario())
        for i, answer in enumerate(answers):
            # Every request is answered by exactly one version, and the
            # ones issued after the swap must be v2.
            assert answer in (want_v1[i], want_v2[i])
            if i >= 10:
                assert answer == want_v2[i]


class TestHttpFrontend:
    @staticmethod
    async def _request(host, port, method, path, payload=None):
        reader, writer = await asyncio.open_connection(host, port)
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head_part, __, body_part = raw.partition(b"\r\n\r\n")
        status = int(head_part.split(b" ", 2)[1])
        headers = dict(
            line.decode().split(": ", 1)
            for line in head_part.split(b"\r\n")[1:]
            if b": " in line
        )
        return status, headers, json.loads(body_part)

    def test_roundtrip_health_query_stats(self, rows_a, rows_b, encoder):
        engine = QueryEngine.build(
            rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED
        )
        direct = engine.query_batch(rows_b[:5]).matches()

        async def scenario():
            server = AsyncQueryServer(engine, BatcherConfig(max_batch=8))
            frontend = await serve_http(server)
            try:
                health = await self._request(
                    frontend.host, frontend.port, "GET", "/healthz"
                )
                answers = await asyncio.gather(
                    *[
                        self._request(
                            frontend.host,
                            frontend.port,
                            "POST",
                            "/query",
                            {"row": list(row)},
                        )
                        for row in rows_b[:5]
                    ]
                )
                stats = await self._request(
                    frontend.host, frontend.port, "GET", "/stats"
                )
                missing = await self._request(
                    frontend.host, frontend.port, "GET", "/nope"
                )
                bad = await self._request(
                    frontend.host, frontend.port, "POST", "/query", {"row": "x"}
                )
            finally:
                await frontend.stop()
            return health, answers, stats, missing, bad

        health, answers, stats, missing, bad = asyncio.run(scenario())
        assert health[0] == 200 and health[2]["ok"] is True
        for i, (status, __, payload) in enumerate(answers):
            assert status == 200
            assert payload["matches"] == [list(m) for m in direct[i]]
        assert stats[0] == 200 and stats[2]["counters"]["n_completed"] == 5.0
        assert missing[0] == 404
        assert bad[0] == 400

    def test_queue_full_maps_to_503_with_retry_after(self, rows_a, encoder):
        engine = QueryEngine.build(
            rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED
        )

        async def scenario():
            server = AsyncQueryServer(
                engine,
                BatcherConfig(
                    max_batch=1,
                    max_wait_us=0.0,
                    queue_depth=1,
                    max_inflight_batches=1,
                ),
            )
            # Saturate: one executing, one queued, then the HTTP request
            # must be rejected with 503 + Retry-After.
            original = server.engine.query_batch

            def slow_query_batch(rows, threshold=None, top_k=None):
                time.sleep(0.3)
                return original(rows, threshold, top_k)

            server.engine.query_batch = slow_query_batch
            frontend = await serve_http(server)
            try:
                fills = [asyncio.create_task(server.query(rows_a[0]))]
                await asyncio.sleep(0.05)  # dispatched, executor busy
                fills.append(asyncio.create_task(server.query(rows_a[0])))
                await asyncio.sleep(0)  # queued: queue at capacity
                status, headers, payload = await self._request(
                    frontend.host,
                    frontend.port,
                    "POST",
                    "/query",
                    {"row": list(rows_a[0])},
                )
                await asyncio.gather(*fills)
            finally:
                await frontend.stop()
            return status, headers, payload

        status, headers, payload = asyncio.run(scenario())
        assert status == 503
        assert float(headers["Retry-After"]) > 0.0
        assert payload["retry_after_s"] > 0.0

    def test_deadline_maps_to_504(self, rows_a, encoder):
        engine = QueryEngine.build(
            rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED
        )

        async def scenario():
            server = AsyncQueryServer(
                engine,
                BatcherConfig(
                    max_batch=1,
                    max_wait_us=0.0,
                    deadline_ms=10.0,
                    max_inflight_batches=1,
                ),
            )
            original = server.engine.query_batch

            def slow_query_batch(rows, threshold=None, top_k=None):
                time.sleep(0.2)
                return original(rows, threshold, top_k)

            server.engine.query_batch = slow_query_batch
            frontend = await serve_http(server)
            try:
                blocker = asyncio.create_task(server.query(rows_a[0]))
                await asyncio.sleep(0.05)
                status, __, payload = await self._request(
                    frontend.host,
                    frontend.port,
                    "POST",
                    "/query",
                    {"row": list(rows_a[0])},
                )
                await blocker
            finally:
                await frontend.stop()
            return status, payload

        status, payload = asyncio.run(scenario())
        assert status == 504
        assert "deadline" in payload["error"]
