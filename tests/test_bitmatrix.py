"""Tests for repro.hamming.bitmatrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.bitmatrix import BitMatrix, concat_matrices, scatter_bits
from repro.hamming.bitvector import BitVector


def random_matrix(rng, n_rows, n_bits, density=0.3):
    rows, bits = [], []
    for i in range(n_rows):
        for b in range(n_bits):
            if rng.random() < density:
                rows.append(i)
                bits.append(b)
    return scatter_bits(n_rows, n_bits, np.asarray(rows), np.asarray(bits))


@pytest.fixture
def matrix(rng):
    return random_matrix(rng, 20, 100)


class TestConstruction:
    def test_zeros(self):
        m = BitMatrix.zeros(3, 70)
        assert m.n_rows == 3
        assert m.n_bits == 70
        assert m.popcounts().tolist() == [0, 0, 0]

    def test_from_vectors_roundtrip(self):
        vectors = [BitVector.from_indices(90, [i, 64 + i]) for i in range(5)]
        m = BitMatrix.from_vectors(vectors)
        for i, v in enumerate(vectors):
            assert m.row(i) == v

    def test_from_vectors_width_mismatch(self):
        with pytest.raises(ValueError):
            BitMatrix.from_vectors([BitVector(8), BitVector(9)])

    def test_from_index_sets(self):
        m = BitMatrix.from_index_sets([[0, 5], [1]], 8)
        assert m.row(0).indices() == [0, 5]
        assert m.row(1).indices() == [1]

    def test_word_shape_validation(self):
        with pytest.raises(ValueError):
            BitMatrix(np.zeros((2, 3), dtype=np.uint64), 70)  # 70 bits needs 2 words


class TestScatter:
    def test_scatter_sets_exact_positions(self):
        m = scatter_bits(3, 130, np.asarray([0, 0, 2]), np.asarray([0, 129, 64]))
        assert m.row(0).indices() == [0, 129]
        assert m.row(1).indices() == []
        assert m.row(2).indices() == [64]

    def test_scatter_duplicates_idempotent(self):
        m = scatter_bits(1, 8, np.asarray([0, 0]), np.asarray([3, 3]))
        assert m.row(0).count() == 1

    def test_scatter_bounds_checked(self):
        with pytest.raises(IndexError):
            scatter_bits(1, 8, np.asarray([0]), np.asarray([8]))
        with pytest.raises(IndexError):
            scatter_bits(1, 8, np.asarray([1]), np.asarray([0]))

    def test_scatter_empty(self):
        m = scatter_bits(2, 8, np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64))
        assert m.popcounts().tolist() == [0, 0]


class TestBitAccess:
    def test_get_set_bit(self):
        m = BitMatrix.zeros(2, 70)
        m.set_bit(1, 69)
        assert m.get_bit(1, 69) == 1
        assert m.get_bit(0, 69) == 0

    def test_bounds(self):
        m = BitMatrix.zeros(1, 8)
        with pytest.raises(IndexError):
            m.get_bit(0, 8)
        with pytest.raises(IndexError):
            m.set_bit(0, -1)


class TestColumns:
    def test_columns_match_per_row_bits(self, matrix):
        picks = [0, 63, 64, 99, 1]
        cols = matrix.columns(picks)
        assert cols.shape == (matrix.n_rows, len(picks))
        for i in range(matrix.n_rows):
            row = matrix.row(i)
            assert cols[i].tolist() == [row[b] for b in picks]

    def test_columns_out_of_range(self, matrix):
        with pytest.raises(IndexError):
            matrix.columns([100])


class TestHamming:
    def test_hamming_to_matches_rowwise(self, matrix):
        probe = matrix.row(3)
        dists = matrix.hamming_to(probe)
        for i in range(matrix.n_rows):
            assert dists[i] == matrix.row(i).hamming(probe)

    def test_hamming_rows_batch(self, matrix, rng):
        rows_a = rng.integers(0, matrix.n_rows, size=15)
        rows_b = rng.integers(0, matrix.n_rows, size=15)
        dists = matrix.hamming_rows(rows_a, matrix, rows_b)
        for a, b, d in zip(rows_a, rows_b, dists):
            assert d == matrix.row(int(a)).hamming(matrix.row(int(b)))

    def test_width_mismatch(self, matrix):
        with pytest.raises(ValueError):
            matrix.hamming_to(BitVector(8))


class TestConcat:
    @given(st.integers(1, 70), st.integers(1, 70))
    @settings(max_examples=20)
    def test_concat_widths(self, w1, w2):
        m1 = BitMatrix.from_vectors([BitVector.from_indices(w1, [w1 - 1])] * 2)
        m2 = BitMatrix.from_vectors([BitVector.from_indices(w2, [0])] * 2)
        out = m1.concat(m2)
        assert out.n_bits == w1 + w2
        assert out.row(0).indices() == [w1 - 1, w1]

    def test_concat_matrices_multiway(self, rng):
        parts = [random_matrix(rng, 5, w) for w in (15, 15, 68, 22)]
        combined = concat_matrices(parts)
        assert combined.n_bits == 120
        # Row-wise equality against BitVector concat.
        for i in range(5):
            expected = parts[0].row(i)
            for part in parts[1:]:
                expected = expected.concat(part.row(i))
            assert combined.row(i) == expected

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError):
            BitMatrix.zeros(2, 8).concat(BitMatrix.zeros(3, 8))
