"""Tests for repro.core.linker — the cBV-HB pipeline and streaming API."""

import numpy as np
import pytest

from repro.core.config import CalibrationConfig
from repro.core.encoder import RecordEncoder
from repro.core.linker import CompactHammingLinker, StreamingLinker
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.data.generators import EXPERIMENT_SCHEME
from repro.evaluation.metrics import evaluate_linkage
from repro.rules.parser import parse_rule

NCVR_NAMES = ["FirstName", "LastName", "Address", "Town"]
NCVR_K = {"FirstName": 5, "LastName": 5, "Address": 10}
PH_RULE = parse_rule("(FirstName<=4) & (LastName<=4) & (Address<=8)")


class TestConstruction:
    def test_exactly_one_mode(self):
        with pytest.raises(ValueError):
            CompactHammingLinker()
        with pytest.raises(ValueError):
            CompactHammingLinker(threshold=4, rule=PH_RULE, k=NCVR_K)

    def test_rule_mode_needs_mapping_k(self):
        with pytest.raises(ValueError, match="per-attribute"):
            CompactHammingLinker(rule=PH_RULE, k=30)

    def test_record_mode_needs_scalar_k(self):
        with pytest.raises(ValueError, match="single integer"):
            CompactHammingLinker(threshold=4, k={"f1": 5})


class TestRecordLevelPipeline:
    def test_high_completeness_on_pl(self, small_pl_problem):
        linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=1)
        result = linker.link(small_pl_problem.dataset_a, small_pl_problem.dataset_b)
        quality = evaluate_linkage(
            result.matches,
            small_pl_problem.true_matches,
            result.n_candidates,
            small_pl_problem.comparison_space,
        )
        assert quality.pairs_completeness >= 0.9
        assert quality.reduction_ratio >= 0.99

    def test_matches_within_threshold(self, small_pl_problem):
        linker = CompactHammingLinker.record_level(threshold=4, k=20, seed=2)
        result = linker.link(small_pl_problem.dataset_a, small_pl_problem.dataset_b)
        assert (result.record_distances <= 4).all()

    def test_calibration_near_paper_width(self, small_pl_problem):
        linker = CompactHammingLinker.record_level(threshold=4, k=20, seed=3)
        linker.link(small_pl_problem.dataset_a, small_pl_problem.dataset_b)
        # Table 3's NCVR record width is 120 bits; synthetic data lands close.
        assert 100 <= linker.encoder.total_bits <= 140

    def test_timings_have_all_stages(self, small_pl_problem):
        linker = CompactHammingLinker.record_level(threshold=4, k=20, seed=4)
        result = linker.link(small_pl_problem.dataset_a, small_pl_problem.dataset_b)
        assert {"calibrate", "embed", "index", "match"} == set(result.timings)
        assert result.total_time == pytest.approx(sum(result.timings.values()))

    def test_reuses_calibrated_encoder(self, small_pl_problem):
        linker = CompactHammingLinker.record_level(threshold=4, k=20, seed=5)
        linker.link(small_pl_problem.dataset_a, small_pl_problem.dataset_b)
        first = linker.encoder
        linker.link(small_pl_problem.dataset_a, small_pl_problem.dataset_b)
        assert linker.encoder is first

    def test_plain_value_rows_accepted(self):
        rows = [("JONES", "SMITH"), ("MARIA", "GARCIA")]
        linker = CompactHammingLinker.record_level(
            threshold=4, k=10, scheme=EXPERIMENT_SCHEME, seed=6
        )
        result = linker.link(rows, rows)
        assert (0, 0) in result.matches
        assert (1, 1) in result.matches


class TestRuleAwarePipeline:
    def test_rule_aware_on_ph(self, small_ph_problem):
        linker = CompactHammingLinker.rule_aware(
            PH_RULE, k=NCVR_K, attribute_names=NCVR_NAMES, seed=7
        )
        result = linker.link(small_ph_problem.dataset_a, small_ph_problem.dataset_b)
        quality = evaluate_linkage(
            result.matches,
            small_ph_problem.true_matches,
            result.n_candidates,
            small_ph_problem.comparison_space,
        )
        assert quality.pairs_completeness >= 0.9

    def test_accepted_pairs_satisfy_rule(self, small_ph_problem):
        linker = CompactHammingLinker.rule_aware(
            PH_RULE, k=NCVR_K, attribute_names=NCVR_NAMES, seed=8
        )
        result = linker.link(small_ph_problem.dataset_a, small_ph_problem.dataset_b)
        assert (result.attribute_distances["FirstName"] <= 4).all()
        assert (result.attribute_distances["LastName"] <= 4).all()
        assert (result.attribute_distances["Address"] <= 8).all()


class TestMultiParty:
    def test_three_way_linkage(self):
        generator = NCVRGenerator()
        datasets = [generator.generate(80, seed=s, id_prefix=f"D{s}") for s in (1, 2, 3)]
        # Make dataset 3 share records with dataset 1.
        datasets[2] = datasets[0]
        linker = CompactHammingLinker.record_level(threshold=4, k=20, seed=9)
        results = linker.link_multiple(datasets)
        assert set(results) == {(0, 1), (0, 2), (1, 2)}
        identical = results[(0, 2)]
        found = identical.matches
        assert all((i, i) in found for i in range(80))

    def test_needs_two_datasets(self):
        linker = CompactHammingLinker.record_level(threshold=4, k=20)
        with pytest.raises(ValueError):
            linker.link_multiple([NCVRGenerator().generate(10, seed=0)])


class TestStreamingLinker:
    @pytest.fixture
    def encoder(self):
        sample = NCVRGenerator().generate(200, seed=10).value_rows()
        return RecordEncoder.calibrated(sample, scheme=EXPERIMENT_SCHEME, seed=10)

    def test_insert_then_query(self, encoder):
        streaming = StreamingLinker(encoder, threshold=4, k=20, seed=11)
        rid = streaming.insert(("JONES", "SMITH", "12 MAIN ST", "BOONE"))
        hits = streaming.query(("JONAS", "SMITH", "12 MAIN ST", "BOONE"))
        assert any(h[0] == rid for h in hits)

    def test_query_respects_threshold(self, encoder):
        streaming = StreamingLinker(encoder, threshold=4, k=20, seed=12)
        streaming.insert(("JONES", "SMITH", "12 MAIN ST", "BOONE"))
        hits = streaming.query(("XAVIER", "QUIRK", "99 ZED BLVD", "ERewhon".upper()))
        assert hits == []

    def test_incremental_growth(self, encoder, small_pl_problem):
        streaming = StreamingLinker(encoder, threshold=4, k=25, seed=13)
        streaming.insert_dataset(small_pl_problem.dataset_a)
        assert len(streaming) == len(small_pl_problem.dataset_a)
        found = 0
        truth = small_pl_problem.true_matches
        for row_b, values in enumerate(small_pl_problem.dataset_b.value_rows()):
            for rid, __ in streaming.query(values):
                if (rid, row_b) in truth:
                    found += 1
        assert found / len(truth) >= 0.9
