"""Tests for repro.rules.parser."""

import pytest

from repro.rules.ast import And, Comparison, Not, Or, RuleError
from repro.rules.parser import parse_rule


class TestBasicParsing:
    def test_single_comparison(self):
        rule = parse_rule("f1 <= 4")
        assert rule == Comparison("f1", 4)

    def test_parenthesised_comparison(self):
        assert parse_rule("(f1 <= 4)") == Comparison("f1", 4)

    def test_float_threshold(self):
        assert parse_rule("f1 <= 4.5") == Comparison("f1", 4.5)

    def test_and_chain(self):
        rule = parse_rule("(f1<=4) & (f2<=4) & (f3<=8)")
        assert isinstance(rule, And)
        assert len(rule.children) == 3

    def test_or_chain(self):
        rule = parse_rule("(f1<=4) | (f2<=4)")
        assert isinstance(rule, Or)

    def test_not(self):
        rule = parse_rule("!(f2 <= 4)")
        assert rule == Not(Comparison("f2", 4))

    def test_keyword_operators(self):
        rule = parse_rule("f1<=4 and not f2<=8 or f3<=1")
        assert isinstance(rule, Or)


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        rule = parse_rule("f1<=1 & f2<=2 | f3<=3")
        assert isinstance(rule, Or)
        assert isinstance(rule.children[0], And)

    def test_brackets_override(self):
        rule = parse_rule("f1<=1 & (f2<=2 | f3<=3)")
        assert isinstance(rule, And)
        assert isinstance(rule.children[1], Or)

    def test_square_brackets_as_in_paper(self):
        rule = parse_rule("[(f1 <= 4) & (f2 <= 4)] | (f3 <= 8)")
        assert isinstance(rule, Or)
        assert isinstance(rule.children[0], And)

    def test_not_binds_tightest(self):
        rule = parse_rule("!f1<=1 & f2<=2")
        assert isinstance(rule, And)
        assert isinstance(rule.children[0], Not)

    def test_double_negation(self):
        rule = parse_rule("!!(f1<=1)")
        assert rule == Not(Not(Comparison("f1", 1)))


class TestPaperRules:
    def test_c1(self):
        rule = parse_rule("(f1<=4) & (f2<=4) & (f3<=8)")
        assert rule.evaluate({"f1": 3, "f2": 4, "f3": 8})
        assert not rule.evaluate({"f1": 3, "f2": 5, "f3": 8})

    def test_c2(self):
        rule = parse_rule("[(f1<=4) & (f2<=4)] | (f3<=8)")
        assert rule.evaluate({"f1": 9, "f2": 9, "f3": 8})

    def test_c3(self):
        rule = parse_rule("(f1<=4) & !(f2<=4)")
        assert rule.evaluate({"f1": 2, "f2": 9})
        assert not rule.evaluate({"f1": 2, "f2": 2})

    def test_compound_c1_section_5_4(self):
        text = "[(f1<=1) & (f2<=2)] | [(f3<=3) & (f4<=4)]"
        rule = parse_rule(text)
        assert isinstance(rule, Or)
        assert all(isinstance(c, And) for c in rule.children)

    def test_unicode_operators(self):
        rule = parse_rule("(f1<=4) ∧ ¬(f2<=4)")
        assert isinstance(rule, And)
        assert isinstance(rule.children[1], Not)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "f1 <=",
            "<= 4",
            "f1 <= 4 &",
            "(f1 <= 4",
            "f1 <= 4)",
            "f1 >= 4",
            "f1 <= 4 4",
            "& f1 <= 4",
        ],
    )
    def test_malformed_rules_raise(self, text):
        with pytest.raises(RuleError):
            parse_rule(text)

    def test_roundtrip_through_str(self):
        text = "[(f1 <= 4) & !(f2 <= 8)] | (f3 <= 1)"
        rule = parse_rule(text)
        assert parse_rule(str(rule)) == rule
