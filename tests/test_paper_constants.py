"""Every number the paper states, checked in one place.

These tests pin the reproduction to the publication: if an implementation
change breaks any quantity the paper reports, this file fails first.
"""

import pytest

from repro.baselines.pstable import euclidean_lsh_parameters
from repro.core.qgram import QGramScheme, qgram_index
from repro.core.sizing import optimal_cvector_size, record_size
from repro.hamming.distance import jaccard_distance_sets
from repro.hamming.theory import hamming_lsh_parameters
from repro.rules.parser import parse_rule
from repro.rules.probability import AttributeParams, rule_table_count


class TestSection4Algorithm1:
    """Figure 1: F('JO') = 248, F('OH') = 371, F('HN') = 195."""

    def test_figure_1_indexes(self):
        assert qgram_index("JO") == 248
        assert qgram_index("OH") == 371
        assert qgram_index("HN") == 195

    def test_bigram_space_26_squared(self):
        assert QGramScheme().space_size == 676


class TestSection5_1Correspondence:
    """Types of errors in E map to bounded Hamming distances in H."""

    scheme = QGramScheme()

    def test_substitute_jones_jonas_distance_4(self):
        assert self.scheme.vector("JONES").hamming(self.scheme.vector("JONAS")) == 4

    def test_substitute_overlap_shannen_distance_3(self):
        assert self.scheme.vector("SHANNEN").hamming(self.scheme.vector("SHENNEN")) == 3

    def test_delete_jones_jons_distance_3(self):
        assert self.scheme.vector("JONES").hamming(self.scheme.vector("JONS")) == 3

    def test_insert_jones_joneas_distance_3(self):
        assert self.scheme.vector("JONES").hamming(self.scheme.vector("JONEAS")) == 3

    def test_jaccard_jones_jonas_0667(self):
        u1 = self.scheme.index_set("JONES")
        u2 = self.scheme.index_set("JONAS")
        assert jaccard_distance_sets(u1, u2) == pytest.approx(0.667, abs=1e-3)

    def test_jaccard_washington_0364(self):
        u1 = self.scheme.index_set("WASHINGTON")
        u2 = self.scheme.index_set("WASHANGTON")
        assert jaccard_distance_sets(u1, u2) == pytest.approx(0.364, abs=1e-2)

    def test_hamming_constant_4_for_both(self):
        short = self.scheme.vector("JONES").hamming(self.scheme.vector("JONAS"))
        long = self.scheme.vector("WASHINGTON").hamming(self.scheme.vector("WASHANGTON"))
        assert short == long == 4


class TestSection5_2Theorem1:
    """Table 3 and the worked example of Section 5.2."""

    def test_worked_example_b51_gives_15(self):
        assert optimal_cvector_size(5.1, rho=1, r=1 / 3) == 15

    def test_worked_example_b20_gives_68(self):
        assert optimal_cvector_size(20.0, rho=1, r=1 / 3) == 68

    def test_table3_ncvr_sizes(self):
        assert [optimal_cvector_size(b) for b in (5.1, 5.0, 20.0, 7.2)] == [15, 15, 68, 22]

    def test_table3_dblp_sizes(self):
        assert [optimal_cvector_size(b) for b in (4.8, 6.2, 64.8, 3.0)] == [14, 19, 226, 8]

    def test_abstract_claim_120_bits_for_four_fields(self):
        assert record_size([5.1, 5.0, 20.0, 7.2]) == 120

    def test_dblp_record_267_bits(self):
        assert record_size([4.8, 6.2, 64.8, 3.0]) == 267


class TestSection6Equation2:
    """Blocking-group counts reported in Section 6.2."""

    def test_pl_ncvr_l6(self):
        __, tables = hamming_lsh_parameters(threshold=4, n_bits=120, k=30, delta=0.1)
        assert tables == 6

    def test_pl_dblp_l3(self):
        __, tables = hamming_lsh_parameters(threshold=4, n_bits=267, k=30, delta=0.1)
        assert tables == 3

    def test_ph_ncvr_rule_c1_l178(self):
        params = {
            "f1": AttributeParams(15, 5),
            "f2": AttributeParams(15, 5),
            "f3": AttributeParams(68, 10),
        }
        rule = parse_rule("(f1<=4) & (f2<=4) & (f3<=8)")
        assert rule_table_count(rule, params, delta=0.1) == 178

    def test_ph_dblp_rule_c1_l62(self):
        params = {
            "f1": AttributeParams(14, 5),
            "f2": AttributeParams(19, 5),
            "f3": AttributeParams(226, 12),
        }
        rule = parse_rule("(f1<=4) & (f2<=4) & (f3<=8)")
        assert rule_table_count(rule, params, delta=0.1) == 62


class TestSection6BaselineConfigurations:
    """Baseline parameters quoted in Section 6.1."""

    def test_bfh_pl_small_l(self):
        """'theta_PL = 45 (L = 4)': record-level blocking over 4x500 bits."""
        __, tables = hamming_lsh_parameters(threshold=180, n_bits=2000, k=30, delta=0.1)
        assert 3 <= tables <= 40  # our sum-threshold convention lands near

    def test_smeb_pl_l29(self):
        """'K = 5 which generates L = 29': attribute threshold 4.5, w = 9."""
        __, tables = euclidean_lsh_parameters(threshold=4.5, k=5, delta=0.1, w=9.0)
        assert 25 <= tables <= 33

    def test_smeb_ph_l194(self):
        """'and L = 194': threshold 7.7 with the same w = 9."""
        __, tables = euclidean_lsh_parameters(threshold=7.7, k=5, delta=0.1, w=9.0)
        assert 170 <= tables <= 220

    def test_bloom_filter_parameters(self):
        from repro.baselines.bloom import DEFAULT_BLOOM_BITS, DEFAULT_BLOOM_HASHES

        assert DEFAULT_BLOOM_BITS == 500
        assert DEFAULT_BLOOM_HASHES == 15

    def test_bloom_john_jahn_distance_54(self):
        """Section 6.1's exact example: d('JOHN', 'JAHN') = 54 in the
        500-bit / 15-hash Bloom space (ours is within a few bits — the
        paper's hash functions differ, only the magnitude is comparable)."""
        from repro.baselines.bloom import BloomFieldEncoder

        enc = BloomFieldEncoder()
        distance = enc.encode("JOHN").hamming(enc.encode("JAHN"))
        assert 40 <= distance <= 60

    def test_bloom_scalability_distance_37(self):
        """And d('SCALABILITY', 'SCELABILITY') = 37: longer strings give a
        *smaller* distance for the same single error."""
        from repro.baselines.bloom import BloomFieldEncoder

        enc = BloomFieldEncoder()
        short = enc.encode("JOHN").hamming(enc.encode("JAHN"))
        long = enc.encode("SCALABILITY").hamming(enc.encode("SCELABILITY"))
        assert long < short
