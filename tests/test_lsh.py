"""Tests for repro.hamming.lsh — the HB blocking/matching mechanism."""

import numpy as np
import pytest

from repro.hamming.bitmatrix import BitMatrix, scatter_bits
from repro.hamming.bitvector import BitVector
from repro.hamming.lsh import BlockingGroup, CompositeHash, HammingLSH


def random_matrix(seed, n_rows, n_bits, density=0.3):
    rng = np.random.default_rng(seed)
    mask = rng.random((n_rows, n_bits)) < density
    rows, bits = np.nonzero(mask)
    return scatter_bits(n_rows, n_bits, rows, bits)


class TestCompositeHash:
    def test_key_packs_sampled_bits(self):
        v = BitVector.from_bits([1, 0, 1, 1])
        h = CompositeHash(positions=(0, 1, 3))
        assert h.key_for(v) == 0b101  # bits 1, 0, 1 packed low-endian

    def test_keys_for_matches_scalar_path(self):
        matrix = random_matrix(0, 10, 50)
        h = CompositeHash(positions=(3, 17, 44, 44))
        keys = h.keys_for(matrix)
        for i in range(10):
            assert keys[i] == h.key_for(matrix.row(i))

    def test_repeated_positions_allowed(self):
        # Base hashes sample with replacement (uniformly at random).
        v = BitVector.from_bits([1, 0])
        assert CompositeHash(positions=(0, 0)).key_for(v) == 0b11


class TestBlockingGroup:
    def test_insert_matrix_groups_equal_keys(self):
        matrix = BitMatrix.from_index_sets([[0], [0], [1]], 8)
        group = BlockingGroup(CompositeHash(positions=(0,)))
        group.insert_matrix(matrix)
        assert sorted(group.probe(matrix.row(0))) == [0, 1]
        assert group.probe(matrix.row(2)) == [2]

    def test_streaming_insert_agrees_with_bulk(self):
        matrix = random_matrix(1, 20, 40)
        bulk = BlockingGroup(CompositeHash(positions=(1, 5, 30)))
        bulk.insert_matrix(matrix)
        stream = BlockingGroup(CompositeHash(positions=(1, 5, 30)))
        for i in range(20):
            stream.insert(matrix.row(i), i)
        for i in range(20):
            assert sorted(bulk.probe(matrix.row(i))) == sorted(stream.probe(matrix.row(i)))

    def test_bucket_sizes(self):
        matrix = BitMatrix.from_index_sets([[0], [0], [1]], 8)
        group = BlockingGroup(CompositeHash(positions=(0,)))
        group.insert_matrix(matrix)
        assert sorted(group.bucket_sizes().tolist()) == [1, 2]


class TestHammingLSH:
    def test_l_from_equation_2(self):
        lsh = HammingLSH(n_bits=120, k=30, threshold=4, delta=0.1, seed=0)
        assert lsh.n_tables == 6

    def test_explicit_tables_override(self):
        lsh = HammingLSH(n_bits=120, k=5, n_tables=12, seed=0)
        assert lsh.n_tables == 12

    def test_requires_threshold_or_tables(self):
        with pytest.raises(ValueError):
            HammingLSH(n_bits=10, k=2)

    def test_identical_vectors_always_candidates(self):
        matrix = random_matrix(2, 30, 60)
        lsh = HammingLSH(n_bits=60, k=8, n_tables=4, seed=3)
        lsh.index(matrix)
        rows_a, rows_b = lsh.candidate_pairs(matrix)
        pairs = set(zip(rows_a.tolist(), rows_b.tolist()))
        for i in range(30):
            assert (i, i) in pairs  # identical vector collides in every table

    def test_candidates_deduplicated(self):
        matrix = random_matrix(3, 10, 40)
        lsh = HammingLSH(n_bits=40, k=4, n_tables=8, seed=4)
        lsh.index(matrix)
        rows_a, rows_b = lsh.candidate_pairs(matrix)
        encoded = rows_a * 10 + rows_b
        assert len(np.unique(encoded)) == len(encoded)

    def test_match_filters_by_threshold(self):
        matrix = random_matrix(5, 20, 60)
        lsh = HammingLSH(n_bits=60, k=6, threshold=5, seed=5)
        lsh.index(matrix)
        rows_a, rows_b, dists = lsh.match(matrix, matrix)
        assert (dists <= 5).all()
        for a, b, d in zip(rows_a, rows_b, dists):
            assert matrix.row(int(a)).hamming(matrix.row(int(b))) == d

    def test_query_unique_ids(self):
        matrix = random_matrix(6, 15, 40)
        lsh = HammingLSH(n_bits=40, k=3, n_tables=10, seed=6)
        lsh.index(matrix)
        ids = lsh.query(matrix.row(0))
        assert len(ids) == len(set(ids))
        assert 0 in ids

    def test_recall_guarantee_empirically(self):
        """Pairs within the threshold are found at rate >= 1 - delta."""
        rng = np.random.default_rng(7)
        n, n_bits, threshold = 300, 120, 4
        base = (rng.random((n, n_bits)) < 0.25).astype(np.uint8)
        # Perturb exactly `threshold` bits of each row.
        noisy = base.copy()
        for i in range(n):
            flips = rng.choice(n_bits, size=threshold, replace=False)
            noisy[i, flips] ^= 1
        def pack(arr):
            rows, bits = np.nonzero(arr)
            return scatter_bits(n, n_bits, rows, bits)
        ma, mb = pack(base), pack(noisy)
        lsh = HammingLSH(n_bits=n_bits, k=30, threshold=threshold, delta=0.1, seed=8)
        lsh.index(ma)
        rows_a, rows_b, __ = lsh.match(ma, mb)
        found = set(zip(rows_a.tolist(), rows_b.tolist()))
        recall = sum((i, i) in found for i in range(n)) / n
        assert recall >= 0.9  # 1 - delta

    def test_width_mismatch_rejected(self):
        lsh = HammingLSH(n_bits=40, k=3, n_tables=2, seed=0)
        with pytest.raises(ValueError):
            lsh.index(BitMatrix.zeros(2, 41))
        with pytest.raises(ValueError):
            lsh.insert(BitVector(41), 0)

    def test_stats(self):
        matrix = random_matrix(9, 25, 50)
        lsh = HammingLSH(n_bits=50, k=4, n_tables=3, seed=9)
        lsh.index(matrix)
        stats = lsh.stats()
        assert stats["n_tables"] == 3
        assert stats["n_buckets"] >= 3
        assert stats["max_bucket"] >= stats["mean_bucket"]

    def test_empty_candidates_before_index(self):
        lsh = HammingLSH(n_bits=40, k=3, n_tables=2, seed=1)
        rows_a, rows_b = lsh.candidate_pairs(BitMatrix.zeros(3, 40))
        # Nothing indexed: every probe misses except shared empty buckets
        # don't exist yet, so no pairs at all.
        assert rows_a.size == 0 and rows_b.size == 0
