"""The public API surface: imports, __all__ hygiene and the README example."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.hamming",
            "repro.rules",
            "repro.data",
            "repro.baselines",
            "repro.evaluation",
            "repro.text",
            "repro.protocol",
            "repro.cli",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.hamming",
            "repro.rules",
            "repro.data",
            "repro.baselines",
            "repro.evaluation",
            "repro.text",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"


class TestReadmeExample:
    def test_quickstart_snippet(self):
        from repro import (
            CompactHammingLinker,
            NCVRGenerator,
            build_linkage_problem,
            evaluate_linkage,
            scheme_pl,
        )

        problem = build_linkage_problem(NCVRGenerator(), 500, scheme_pl(), seed=42)
        linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=42)
        result = linker.link(problem.dataset_a, problem.dataset_b)
        quality = evaluate_linkage(
            result.matches,
            problem.true_matches,
            result.n_candidates,
            problem.comparison_space,
        )
        assert quality.pairs_completeness >= 0.95
        assert 100 <= linker.encoder.total_bits <= 140

    def test_rule_aware_snippet(self):
        from repro import CompactHammingLinker, parse_rule

        rule = parse_rule("(FirstName<=4) & (LastName<=4) & (Address<=8)")
        linker = CompactHammingLinker.rule_aware(
            rule,
            k={"FirstName": 5, "LastName": 5, "Address": 10},
            attribute_names=["FirstName", "LastName", "Address", "Town"],
        )
        assert linker.rule is rule


class TestDoctests:
    def test_module_doctests(self):
        """Run the doctest examples embedded in key modules."""
        import doctest

        failures = 0
        for name in (
            "repro.core.qgram",
            "repro.core.sizing",
            "repro.hamming.theory",
            "repro.rules.parser",
            "repro.rules.probability",
            "repro.text.edit_distance",
            "repro.text.normalize",  # importlib: 'normalize' the function
        ):  # shadows the module attribute on the package, so resolve by name
            module = importlib.import_module(name)
            result = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
            failures += result.failed
        assert failures == 0
