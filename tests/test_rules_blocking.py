"""Tests for repro.rules.blocking — rule-aware attribute-level LSH."""

import numpy as np
import pytest

from repro.rules.ast import RuleError
from repro.rules.blocking import RuleAwareBlocker
from repro.rules.parser import parse_rule

K = {"f1": 5, "f2": 5, "f3": 10, "f4": 4}

RECORDS_A = [
    ("JONES", "SMITH", "12 MAIN ST APT 4", "BOONE"),
    ("MARIA", "GARCIA", "99 OAK AVE", "DURHAM"),
    ("PETER", "WALKER", "7 ELM DR", "APEX"),
]
# B: row 0 perturbs A0's f1 by one substitution; row 1 is unrelated; row 2
# perturbs A2's f2 heavily (5 edits) to violate a f2 rule.
RECORDS_B = [
    ("JANES", "SMITH", "12 MAIN ST APT 4", "BOONE"),
    ("XXXXX", "YYYYY", "0 ZZZ QQ", "WWWW"),
    ("PETER", "WOLKOR", "7 ELM DR", "APEX"),
]


@pytest.fixture
def matrices(ncvr_encoder):
    return (
        ncvr_encoder.encode_dataset(RECORDS_A),
        ncvr_encoder.encode_dataset(RECORDS_B),
    )


class TestCompilation:
    def test_c1_single_structure_with_paper_l(self, ncvr_encoder):
        blocker = RuleAwareBlocker(
            parse_rule("(f1<=4) & (f2<=4) & (f3<=8)"), ncvr_encoder, k=K, seed=1
        )
        assert len(blocker.structures) == 1
        assert blocker.structures[0].n_tables == 178
        assert blocker.total_tables == 178

    def test_or_builds_structure_per_arm_with_shared_l(self, ncvr_encoder):
        blocker = RuleAwareBlocker(
            parse_rule("(f1<=4) | (f2<=4)"), ncvr_encoder, k=K, seed=1
        )
        assert len(blocker.structures) == 2
        # Definition 5: both arms share the OR's L.
        assert blocker.structures[0].n_tables == blocker.structures[1].n_tables

    def test_c3_not_keeps_unmodified_child_structure(self, ncvr_encoder):
        blocker = RuleAwareBlocker(
            parse_rule("(f1<=4) & !(f2<=4)"), ncvr_encoder, k=K, seed=1
        )
        # Two structures: the positive f1 one and the f2 exclusion one.
        assert len(blocker.structures) == 2

    def test_bare_not_rejected(self, ncvr_encoder):
        with pytest.raises(RuleError, match="positive"):
            RuleAwareBlocker(parse_rule("!(f1<=4)"), ncvr_encoder, k=K, seed=1)

    def test_missing_k_rejected(self, ncvr_encoder):
        with pytest.raises(RuleError, match="no K"):
            RuleAwareBlocker(parse_rule("(f1<=4)"), ncvr_encoder, k={}, seed=1)

    def test_threshold_above_width_rejected(self, ncvr_encoder):
        with pytest.raises(RuleError, match="exceeds"):
            RuleAwareBlocker(parse_rule("(f1<=99)"), ncvr_encoder, k=K, seed=1)

    def test_nested_and_flattened(self, ncvr_encoder):
        blocker = RuleAwareBlocker(
            parse_rule("((f1<=4) & (f2<=4)) & (f3<=8)"), ncvr_encoder, k=K, seed=1
        )
        assert len(blocker.structures) == 1
        assert blocker.structures[0].n_tables == 178


class TestBlockingSemantics:
    def test_and_candidates_satisfy_rule_mostly(self, ncvr_encoder, matrices):
        matrix_a, matrix_b = matrices
        rule = parse_rule("(f1<=4) & (f2<=4) & (f3<=8)")
        blocker = RuleAwareBlocker(rule, ncvr_encoder, k=K, seed=2)
        blocker.index(matrix_a)
        rows_a, rows_b, __ = blocker.match(matrix_b)
        pairs = set(zip(rows_a.tolist(), rows_b.tolist()))
        assert (0, 0) in pairs  # single substitution on f1 passes
        assert (1, 1) not in pairs  # unrelated record

    def test_not_excludes_candidates(self, ncvr_encoder, matrices):
        matrix_a, matrix_b = matrices
        rule = parse_rule("(f1<=4) & !(f2<=4)")
        blocker = RuleAwareBlocker(rule, ncvr_encoder, k=K, seed=3)
        blocker.index(matrix_a)
        cand_a, cand_b = blocker.candidate_pairs(matrix_b)
        pairs = set(zip(cand_a.tolist(), cand_b.tolist()))
        # (0, 0) matches on f1 AND on f2 -> the f2 structure excludes it
        # with high probability (L tables must all miss to keep it).
        assert (0, 0) not in pairs

    def test_not_semantics_in_match(self, ncvr_encoder, matrices):
        matrix_a, matrix_b = matrices
        rule = parse_rule("(f1<=4) & !(f2<=4)")
        blocker = RuleAwareBlocker(rule, ncvr_encoder, k=K, seed=3)
        blocker.index(matrix_a)
        rows_a, rows_b, distances = blocker.match(matrix_b)
        # Any accepted pair truly satisfies the rule on measured distances.
        if rows_a.size:
            assert (distances["f1"] <= 4).all()
            assert (distances["f2"] > 4).all()

    def test_or_unions_arms(self, ncvr_encoder, matrices):
        matrix_a, matrix_b = matrices
        rule = parse_rule("(f1<=4) | (f2<=4)")
        blocker = RuleAwareBlocker(rule, ncvr_encoder, k=K, seed=4)
        blocker.index(matrix_a)
        rows_a, rows_b, __ = blocker.match(matrix_b)
        pairs = set(zip(rows_a.tolist(), rows_b.tolist()))
        # (2, 2): f1 identical (distance 0) satisfies the first arm even
        # though f2 was heavily perturbed.
        assert (2, 2) in pairs

    def test_match_before_index_rejected(self, ncvr_encoder, matrices):
        __, matrix_b = matrices
        blocker = RuleAwareBlocker(parse_rule("(f1<=4)"), ncvr_encoder, k=K, seed=5)
        with pytest.raises(RuleError, match="index"):
            blocker.candidate_pairs(matrix_b)

    def test_wrong_width_rejected(self, ncvr_encoder):
        from repro.hamming.bitmatrix import BitMatrix

        blocker = RuleAwareBlocker(parse_rule("(f1<=4)"), ncvr_encoder, k=K, seed=5)
        with pytest.raises(RuleError, match="width"):
            blocker.index(BitMatrix.zeros(2, 8))


class TestRecallGuarantee:
    def test_and_rule_recall(self, ncvr_encoder):
        """Pairs satisfying the AND rule are formulated at rate >= 1 - delta."""
        rng = np.random.default_rng(6)
        letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

        def word(n):
            return "".join(letters[i] for i in rng.integers(0, 26, size=n))

        records_a = [(word(6), word(6), word(21), word(8)) for __ in range(150)]
        # One substitution in f1 only: guaranteed within all thresholds.
        records_b = [
            ("Q" + rec[0][1:], rec[1], rec[2], rec[3]) for rec in records_a
        ]
        ma = ncvr_encoder.encode_dataset(records_a)
        mb = ncvr_encoder.encode_dataset(records_b)
        rule = parse_rule("(f1<=4) & (f2<=4) & (f3<=8)")
        blocker = RuleAwareBlocker(rule, ncvr_encoder, k=K, delta=0.1, seed=7)
        blocker.index(ma)
        rows_a, rows_b, __ = blocker.match(mb)
        found = set(zip(rows_a.tolist(), rows_b.tolist()))
        recall = sum((i, i) in found for i in range(150)) / 150
        assert recall >= 0.9
