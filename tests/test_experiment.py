"""Tests for repro.evaluation.experiment and reporting."""

import pytest

from repro.core.linker import CompactHammingLinker
from repro.data import Operation
from repro.evaluation.experiment import (
    per_operation_completeness,
    run_experiment,
    sweep,
)
from repro.evaluation.reporting import banner, format_series, format_table


def _make_linker(seed):
    return CompactHammingLinker.record_level(threshold=4, k=20, seed=seed)


class TestRunExperiment:
    def test_trials_aggregate(self, small_pl_problem):
        result = run_experiment(
            "cbv", _make_linker, small_pl_problem, n_trials=2, base_seed=0
        )
        assert result.n_trials == 2
        assert 0.0 <= result.mean_pc <= 1.0
        assert result.mean_time > 0.0
        assert result.mean("RR") == result.mean_rr

    def test_distinct_seeds_per_trial(self, small_pl_problem):
        result = run_experiment(
            "cbv", _make_linker, small_pl_problem, n_trials=3, base_seed=10
        )
        assert [t.seed for t in result.trials] == [10, 11, 12]

    def test_summary_keys(self, small_pl_problem):
        result = run_experiment("cbv", _make_linker, small_pl_problem, n_trials=1)
        assert {"PC", "PQ", "RR", "F1", "time_s", "n_trials"} == set(result.summary())

    def test_stage_timings_recorded(self, small_pl_problem):
        result = run_experiment("cbv", _make_linker, small_pl_problem, n_trials=1)
        assert result.mean_stage_time("embed") > 0.0

    def test_invalid_trials(self, small_pl_problem):
        with pytest.raises(ValueError):
            run_experiment("x", _make_linker, small_pl_problem, n_trials=0)

    def test_stdev_single_trial_zero(self, small_pl_problem):
        result = run_experiment("cbv", _make_linker, small_pl_problem, n_trials=1)
        assert result.stdev("PC") == 0.0


class TestPerOperation:
    def test_breakdown_covers_present_operations(self, small_pl_problem):
        result = run_experiment("cbv", _make_linker, small_pl_problem, n_trials=1)
        breakdown = per_operation_completeness(result, small_pl_problem)
        present = {
            op.value
            for op in Operation
            if small_pl_problem.matches_with_operation(op)
        }
        assert set(breakdown) == present
        for value in breakdown.values():
            assert 0.0 <= value <= 1.0


class TestSweep:
    def test_sweep_runs_each_point(self, small_pl_problem):
        points = [("K=10", 10), ("K=20", 20)]
        results = sweep(
            points,
            lambda k, seed: CompactHammingLinker.record_level(threshold=4, k=k, seed=seed),
            small_pl_problem,
            n_trials=1,
        )
        assert [label for label, __ in results] == ["K=10", "K=20"]
        for __, res in results:
            assert res.n_trials == 1


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["method", "PC"], [["cBV-HB", 0.97], ["BfH", 0.92]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("method")
        assert "cBV-HB" in lines[2]

    def test_format_table_row_arity(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("PC", [10, 20], [0.5, 0.75])
        assert "10 -> 0.5" in text
        assert text.startswith("series PC:")

    def test_format_series_arity(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1.0, 2.0])

    def test_banner(self):
        text = banner("Table 3")
        assert text.splitlines()[1] == "Table 3"
