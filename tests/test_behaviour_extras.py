"""Behavioural depth tests: statistical and structural properties that the
per-module suites don't cover."""

import numpy as np
import pytest

from repro.baselines.bloom import BloomFieldEncoder
from repro.core.cvector import UniversalHash
from repro.core.sizing import expected_set_positions
from repro.data.generators import DBLPGenerator, NCVRGenerator
from repro.data.schema import Dataset
from repro.protocol import DataCustodian
from repro.data.generators import EXPERIMENT_SCHEME


class TestGeneratorRealismKnobs:
    def test_household_rate_zero_gives_unique_addresses(self):
        dataset = NCVRGenerator(household_rate=0.0).generate(300, seed=1)
        addresses = dataset.column("Address")
        # Random 4-digit numbers + street + unit: collisions are rare.
        assert len(set(addresses)) >= 0.98 * len(addresses)

    def test_household_rate_produces_shared_households(self):
        dataset = NCVRGenerator(household_rate=0.4).generate(300, seed=1)
        households = {
            (r.values[1], r.values[2], r.values[3]) for r in dataset
        }
        # ~40% of records join an existing household.
        assert len(households) <= 0.75 * len(dataset)

    def test_household_members_differ_in_first_name_distribution(self):
        dataset = NCVRGenerator(household_rate=0.5).generate(400, seed=2)
        by_household: dict[tuple, list[str]] = {}
        for record in dataset:
            by_household.setdefault(tuple(record.values[1:]), []).append(
                record.values[0]
            )
        multi = [names for names in by_household.values() if len(names) > 1]
        assert multi  # households exist
        # Most multi-member households have at least two distinct first names.
        distinct = sum(1 for names in multi if len(set(names)) > 1)
        assert distinct / len(multi) > 0.8

    def test_coauthor_rate_produces_shared_titles(self):
        dataset = DBLPGenerator(coauthor_rate=0.4).generate(300, seed=3)
        titles = dataset.column("Title")
        assert len(set(titles)) <= 0.75 * len(titles)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            NCVRGenerator(household_rate=1.0)
        with pytest.raises(ValueError):
            DBLPGenerator(coauthor_rate=-0.1)


class TestUniversalHashStatistics:
    def test_pairwise_independence_collision_rate(self):
        """Across random hash draws, Pr[g(x) = g(y)] ~ 1/m for x != y."""
        rng = np.random.default_rng(4)
        m, trials = 15, 3000
        collisions = 0
        for __ in range(trials):
            g = UniversalHash.random(m, rng)
            if g(101) == g(577):
                collisions += 1
        assert collisions / trials == pytest.approx(1 / m, abs=0.02)

    def test_different_inputs_spread(self):
        g = UniversalHash(a=7919, b=104729, m=68)
        values = {g(x) for x in range(676)}
        assert len(values) == 68  # every slot reachable


class TestBloomFillRatio:
    def test_fill_tracks_balls_in_bins_expectation(self):
        """Bloom occupancy follows the same E[v] law as Lemma 1, with
        b = distinct bigrams * hashes per bigram."""
        encoder = BloomFieldEncoder(n_bits=500, n_hashes=15)
        value = "TWELVE MAIN STREET APT"  # ~21 distinct bigrams
        n_grams = len(set(encoder.scheme.grams(value)))
        expected = expected_set_positions(n_grams * 15, 500)
        observed = encoder.encode(value).count()
        assert observed == pytest.approx(expected, rel=0.1)


class TestProtocolStatistics:
    def test_custodian_average_counts_match_generator(self):
        dataset = NCVRGenerator().generate(400, seed=5)
        custodian = DataCustodian("alice", dataset)
        counts = custodian.average_qgram_counts(EXPERIMENT_SCHEME)
        assert len(counts) == 4
        assert counts[0] == pytest.approx(5.1, rel=0.15)  # FirstName b
        assert counts[2] == pytest.approx(20.0, rel=0.15)  # Address b

    def test_custodian_requires_name(self):
        dataset = NCVRGenerator().generate(5, seed=6)
        with pytest.raises(ValueError):
            DataCustodian("", dataset)


class TestDatasetEdgeCases:
    def test_single_record_dataset(self):
        from repro.data.schema import Record, Schema

        schema = Schema.of("a")
        dataset = Dataset(schema, [Record("r0", ("X",))])
        assert len(dataset) == 1
        assert dataset.column("a") == ["X"]

    def test_sample_is_without_replacement(self):
        dataset = NCVRGenerator().generate(50, seed=7)
        rng = np.random.default_rng(0)
        sample = dataset.sample(30, rng)
        ids = [record.record_id for record in sample]
        assert len(set(ids)) == 30


class TestHammingLSHStatsSurface:
    def test_stats_before_indexing(self):
        from repro.hamming.lsh import HammingLSH

        lsh = HammingLSH(n_bits=32, k=4, n_tables=2, seed=8)
        stats = lsh.stats()
        assert stats["n_buckets"] == 0.0
        assert stats["mean_bucket"] == 0.0
