"""Tests for reprolint phase 4: interprocedural rules RL301-RL305,
unused-suppression detection (RL007), rule-id globs, and the
dependency-aware incremental cache.

Synthetic fixtures are small package trees written to tmp_path (same
idiom as test_project_lint.py).  The mutation tests copy the *real*
``src/repro`` tree plus the shipped pyproject protocol table into
tmp_path, seed one realistic bug per rule into the wal/shards/serve/cli
sources, and assert the lint catches exactly it — proving the shipped
protocol configuration guards the code it claims to guard.
"""

import shutil
import textwrap
from pathlib import Path

from repro.analysis import LintConfig, lint_paths, load_config
from repro.analysis.__main__ import main as lint_main
from repro.analysis.cache import LintCache, config_fingerprint
from repro.analysis.config import (
    OrderProtocol,
    ProtocolConfig,
    RequireProtocol,
    TypestateProtocol,
)
from repro.analysis.engine import all_rule_ids

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_tree(tmp_path, files):
    """Write dedented file contents, creating parent directories."""
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return tmp_path


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


def order_protocols(*modules):
    return ProtocolConfig(
        events={"fsync": ("os.fsync",), "publish": ("os.replace",)},
        orders=(
            OrderProtocol(
                anchor="publish",
                before="fsync",
                after="fsync",
                modules=modules or ("app.store",),
            ),
        ),
        present=True,
    )


class TestRL301CrashConsistency:
    def _lint(self, tmp_path, body, protocols=None):
        root = make_tree(
            tmp_path,
            {"src/app/__init__.py": "", "src/app/store.py": body},
        )
        config = LintConfig(
            select=("RL301",), protocols=protocols or order_protocols()
        )
        return lint_paths([root], config)

    def test_fenced_publish_is_clean(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                import os

                def _sync(fd):
                    os.fsync(fd)

                def publish(tmp, dst, fd, dirfd):
                    _sync(fd)
                    os.replace(tmp, dst)
                    _sync(dirfd)
                """,
            )
            == []
        )

    def test_missing_before_fsync_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import os

            def _sync(fd):
                os.fsync(fd)

            def publish(tmp, dst, dirfd):
                os.replace(tmp, dst)
                _sync(dirfd)
            """,
        )
        assert rule_ids(findings) == ["RL301"]
        assert "not preceded by `fsync`" in findings[0].message

    def test_missing_after_fsync_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import os

            def publish(tmp, dst, fd):
                os.fsync(fd)
                os.replace(tmp, dst)
            """,
        )
        assert rule_ids(findings) == ["RL301"]
        assert "not followed by `fsync`" in findings[0].message

    def test_fsync_on_one_branch_only_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import os

            def publish(tmp, dst, fd, fast):
                if not fast:
                    os.fsync(fd)
                os.replace(tmp, dst)
                os.fsync(fd)
            """,
        )
        assert rule_ids(findings) == ["RL301"]

    def test_unscoped_module_not_checked(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                import os

                def publish(tmp, dst):
                    os.replace(tmp, dst)
                """,
                protocols=order_protocols("other.module"),
            )
            == []
        )


def require_protocols():
    return ProtocolConfig(
        events={"fsync": ("os.fsync",)},
        requires=(
            RequireProtocol(event="fsync", functions=("app.wal.sync_all",)),
        ),
        present=True,
    )


class TestRL302Durability:
    def _lint(self, tmp_path, body, select=("RL302",)):
        root = make_tree(
            tmp_path,
            {"src/app/__init__.py": "", "src/app/wal.py": body},
        )
        config = LintConfig(select=select, protocols=require_protocols())
        return lint_paths([root], config)

    def test_fsync_on_all_paths_is_clean(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                import os

                def sync_all(handle):
                    handle.flush()
                    os.fsync(handle.fileno())
                """,
            )
            == []
        )

    def test_fsync_through_helper_is_clean(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                import os

                def _sync(handle):
                    os.fsync(handle.fileno())

                def sync_all(handle):
                    _sync(handle)
                """,
            )
            == []
        )

    def test_conditional_fsync_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import os

            def sync_all(handle, durable):
                if durable:
                    os.fsync(handle.fileno())
            """,
        )
        assert rule_ids(findings) == ["RL302"]
        assert findings[0].severity == "error"
        assert "app.wal.sync_all" in findings[0].message

    def test_always_raising_function_is_vacuously_durable(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                def sync_all(handle):
                    raise RuntimeError("unsupported")
                """,
            )
            == []
        )


def typestate_protocols():
    return ProtocolConfig(
        typestates=(
            TypestateProtocol(
                create=("*.open_index",),
                final=("close",),
                forbidden=("query", "ingest"),
                modules=("app.cli",),
            ),
        ),
        present=True,
    )


class TestRL303Typestate:
    STORE = """
        class Index:
            def query(self, q):
                return q

            def ingest(self, rows):
                return rows

            def close(self):
                pass

        def open_index(path):
            return Index()
    """

    def _lint(self, tmp_path, body):
        root = make_tree(
            tmp_path,
            {
                "src/app/__init__.py": "",
                "src/app/store.py": self.STORE,
                "src/app/cli.py": body,
            },
        )
        config = LintConfig(select=("RL303",), protocols=typestate_protocols())
        return lint_paths([root], config)

    def test_close_then_use_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            from app.store import open_index

            def run(path):
                idx = open_index(path)
                idx.close()
                return idx.query(1)
            """,
        )
        assert rule_ids(findings) == ["RL303"]
        assert "idx.query()" in findings[0].message

    def test_use_then_close_is_clean(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                from app.store import open_index

                def run(path):
                    idx = open_index(path)
                    out = idx.query(1)
                    idx.close()
                    return out
                """,
            )
            == []
        )

    def test_close_on_one_branch_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            from app.store import open_index

            def run(path, early):
                idx = open_index(path)
                if early:
                    idx.close()
                return idx.query(1)
            """,
        )
        assert rule_ids(findings) == ["RL303"]

    def test_rebinding_starts_a_fresh_trace(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                from app.store import open_index

                def run(path):
                    idx = open_index(path)
                    idx.close()
                    idx = open_index(path)
                    return idx.query(1)
                """,
            )
            == []
        )


class TestRL304InterproceduralPurity:
    def _lint(self, tmp_path, body):
        root = make_tree(
            tmp_path,
            {"src/app/__init__.py": "", "src/app/work.py": body},
        )
        return lint_paths([root], LintConfig(select=("RL304",)))

    def test_rng_two_calls_deep_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import numpy as np

            def _noise():
                return np.random.random()

            def helper(item):
                return _noise() + item

            def worker(item):
                return helper(item)

            def driver(items, cfg):
                return parallel_map(worker, items, cfg)
            """,
        )
        assert rule_ids(findings) == ["RL304"]
        assert "worker -> helper -> _noise" in findings[0].message

    def test_mutating_helper_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            SHARED = []

            def _accumulate(item):
                SHARED.append(item)

            def worker(item):
                _accumulate(item)
                return item

            def driver(items, cfg):
                return parallel_map(worker, items, cfg)
            """,
        )
        assert rule_ids(findings) == ["RL304"]
        assert "SHARED" in findings[0].message

    def test_pure_chain_is_clean(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                def helper(item):
                    return item * 2

                def worker(item):
                    return helper(item)

                def driver(items, cfg):
                    return parallel_map(worker, items, cfg)
                """,
            )
            == []
        )

    def test_initializer_chain_may_mutate_but_not_draw(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            import numpy as np

            STATE = {}

            def _pin():
                STATE["x"] = 1

            def _draw():
                return np.random.random()

            def init_ok():
                _pin()

            def init_bad():
                _draw()

            def worker(item):
                return item

            def driver(items, cfg):
                parallel_map(worker, items, cfg, initializer=init_ok)
                return parallel_map(worker, items, cfg, initializer=init_bad)
            """,
        )
        assert rule_ids(findings) == ["RL304"]
        assert "_draw" in findings[0].message


class TestRL305Ownership:
    def _lint(self, tmp_path, body):
        root = make_tree(
            tmp_path,
            {
                "src/app/__init__.py": "",
                "src/app/io_helpers.py": """
                    def open_log(path):
                        return open(path, "rb")
                """,
                "src/app/use.py": body,
            },
        )
        return lint_paths([root], LintConfig(select=("RL305",)))

    def test_leaked_helper_handle_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            from app.io_helpers import open_log

            def leak(path):
                h = open_log(path)
                data = h.read()
                return len(data)
            """,
        )
        assert rule_ids(findings) == ["RL305"]
        assert "open_log" in findings[0].message

    def test_discarded_helper_handle_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            from app.io_helpers import open_log

            def touch(path):
                open_log(path)
            """,
        )
        assert rule_ids(findings) == ["RL305"]
        assert "discarded" in findings[0].message

    def test_closed_handle_is_clean(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                from app.io_helpers import open_log

                def read(path):
                    h = open_log(path)
                    try:
                        return h.read()
                    finally:
                        h.close()
                """,
            )
            == []
        )

    def test_returned_handle_transfers_ownership(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                from app.io_helpers import open_log

                def reopen(path):
                    h = open_log(path)
                    return h
                """,
            )
            == []
        )

    def test_non_handle_helper_is_clean(self, tmp_path):
        assert (
            self._lint(
                tmp_path,
                """
                from app.io_helpers import open_log

                def _compute(x):
                    return x + 1

                def run(path):
                    v = _compute(2)
                    return v + 1
                """,
            )
            == []
        )


class TestRuleIdGlobs:
    def test_select_glob_enables_family(self):
        config = LintConfig(select=("RL3*",))
        assert config.rule_enabled("RL301")
        assert config.rule_enabled("RL305")
        assert not config.rule_enabled("RL201")
        assert not config.rule_enabled("RL007")

    def test_ignore_glob_disables_family(self):
        config = LintConfig(ignore=("RL2*",))
        assert not config.rule_enabled("RL201")
        assert not config.rule_enabled("RL205")
        assert config.rule_enabled("RL301")
        assert config.rule_enabled("RL001")

    def test_cli_accepts_glob_select(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        assert lint_main([str(target), "--select", "RL3*", "--no-cache"]) == 0
        capsys.readouterr()

    def test_cli_rejects_glob_matching_nothing(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X: int = 1\n")
        assert lint_main([str(target), "--select", "RL9*", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule id" in err
        assert "RL3*" in err  # the error advertises the valid prefixes

    def test_all_rule_ids_include_new_families(self):
        known = all_rule_ids()
        assert {"RL301", "RL302", "RL303", "RL304", "RL305", "RL007"} <= known


class TestUnusedSuppressions:
    def test_off_by_default(self, tmp_path):
        root = make_tree(
            tmp_path,
            {"src/app/mod.py": "Y: int = 1  # reprolint: disable=RL002\n"},
        )
        assert lint_paths([root], LintConfig()) == []

    def test_unused_suppression_flagged_when_enabled(self, tmp_path):
        root = make_tree(
            tmp_path,
            {"src/app/mod.py": "Y: int = 1  # reprolint: disable=RL002\n"},
        )
        findings = lint_paths(
            [root], LintConfig(warn_unused_suppressions=True)
        )
        assert rule_ids(findings) == ["RL007"]
        assert "unused suppression" in findings[0].message
        assert findings[0].severity == "warn"

    def test_used_suppression_not_flagged(self, tmp_path):
        root = make_tree(
            tmp_path,
            {"src/app/mod.py": "x = eval('1')  # reprolint: disable=RL002\n"},
        )
        findings = lint_paths(
            [root], LintConfig(warn_unused_suppressions=True)
        )
        assert findings == []

    def test_unknown_rule_id_reported(self, tmp_path):
        root = make_tree(
            tmp_path,
            {"src/app/mod.py": "Y: int = 1  # reprolint: disable=RL999\n"},
        )
        findings = lint_paths(
            [root], LintConfig(warn_unused_suppressions=True)
        )
        assert rule_ids(findings) == ["RL007"]
        assert "unknown rule RL999" in findings[0].message

    def test_suppression_of_disabled_rule_skipped(self, tmp_path):
        # RL002 never ran, so its suppression cannot be proven unused.
        root = make_tree(
            tmp_path,
            {"src/app/mod.py": "Y: int = 1  # reprolint: disable=RL002\n"},
        )
        findings = lint_paths(
            [root],
            LintConfig(select=("RL007",), warn_unused_suppressions=True),
        )
        assert findings == []

    def test_inter_phase_suppression_counts_as_used(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/app/__init__.py": "",
                "src/app/wal.py": """
                    import os

                    def sync_all(handle, durable):  # reprolint: disable=RL302
                        if durable:
                            os.fsync(handle.fileno())
                """,
            },
        )
        config = LintConfig(
            select=("RL302", "RL007"),
            protocols=require_protocols(),
            warn_unused_suppressions=True,
        )
        assert lint_paths([root], config) == []

    def test_detection_survives_a_warm_cache(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/app/mod.py": (
                    "x = eval('1')  # reprolint: disable=RL002\n"
                    "Y: int = 1  # reprolint: disable=RL006\n"
                ),
            },
        )
        config = LintConfig(warn_unused_suppressions=True)
        fingerprint = config_fingerprint(config, sorted(all_rule_ids()))
        cache_path = tmp_path / "cache.json"

        cache = LintCache.load(cache_path, fingerprint)
        cold = lint_paths([root], config, cache=cache)
        assert rule_ids(cold) == ["RL007"]  # RL006 suppression is unused

        stats = {}
        cache = LintCache.load(cache_path, fingerprint)
        warm = lint_paths([root], config, cache=cache, stats=stats)
        assert warm == cold
        assert stats["parsed"] == 0

    def test_pyproject_toggle(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.reprolint]\nwarn-unused-suppressions = true\n"
        )
        assert load_config(pyproject).warn_unused_suppressions

    def test_cli_flag(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("Y: int = 1  # reprolint: disable=RL002\n")
        assert (
            lint_main([str(target), "--warn-unused-suppressions", "--no-cache"])
            == 0  # RL007 defaults to warn severity
        )
        out = capsys.readouterr().out
        assert "RL007" in out


class TestProtocolConfigParsing:
    def test_shipped_table_parses(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        protocols = config.protocols
        assert protocols.present
        assert "os.fsync" in protocols.events["fsync"]
        assert any(
            order.anchor == "publish" and order.before == "fsync"
            for order in protocols.orders
        )
        assert any(
            "repro.wal.segment.SegmentWriter.sync" in req.functions
            for req in protocols.requires
        )
        assert any("close" in ts.final for ts in protocols.typestates)

    def test_minimal_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            textwrap.dedent(
                """
                [tool.reprolint.protocols.events]
                sync = ["os.fsync", "os.fdatasync"]

                [[tool.reprolint.protocols.order]]
                anchor = "sync"
                before = "sync"
                modules = ["pkg.*"]
                """
            )
        )
        protocols = load_config(pyproject).protocols
        assert protocols.events["sync"] == ("os.fsync", "os.fdatasync")
        assert protocols.orders[0].after == ""
        assert protocols.order_scoped("pkg.mod")
        assert not protocols.order_scoped("other.mod")


class TestDependencyAwareCache:
    FILES = {
        "src/app/__init__.py": "",
        "src/app/a.py": """
            from app.b import helper

            def caller():
                return helper()
        """,
        "src/app/b.py": """
            def helper():
                return 1
        """,
        "src/app/c.py": """
            def lone():
                return 2
        """,
    }

    def _run(self, root, cache_path, config, fingerprint):
        stats = {}
        cache = LintCache.load(cache_path, fingerprint)
        findings = lint_paths([root], config, cache=cache, stats=stats)
        return findings, stats

    def test_callee_edit_relints_exactly_its_dependents(self, tmp_path):
        root = make_tree(tmp_path, dict(self.FILES))
        config = LintConfig(select=("RL305",))
        fingerprint = config_fingerprint(config, sorted(all_rule_ids()))
        cache_path = tmp_path / "cache.json"

        _, cold = self._run(root, cache_path, config, fingerprint)
        assert cold["inter_module_runs"] == 4  # app, app.a, app.b, app.c
        assert cold["inter_cache_hits"] == 0

        _, warm = self._run(root, cache_path, config, fingerprint)
        assert warm["inter_module_runs"] == 0
        assert warm["inter_cache_hits"] == 4

        # Editing the callee must re-lint it and its caller — nothing else.
        b = root / "src/app/b.py"
        b.write_text(b.read_text() + "\n\ndef helper2():\n    return 3\n")
        _, edited = self._run(root, cache_path, config, fingerprint)
        assert edited["parsed"] == 1
        assert edited["inter_module_runs"] == 2  # app.b and app.a
        assert edited["inter_cache_hits"] == 2  # app and app.c replay

    def test_cached_inter_findings_replay(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "src/app/__init__.py": "",
                "src/app/io_helpers.py": """
                    def open_log(path):
                        return open(path, "rb")
                """,
                "src/app/use.py": """
                    from app.io_helpers import open_log

                    def leak(path):
                        h = open_log(path)
                        data = h.read()
                        return len(data)
                """,
            },
        )
        config = LintConfig(select=("RL305",))
        fingerprint = config_fingerprint(config, sorted(all_rule_ids()))
        cache_path = tmp_path / "cache.json"

        cold_findings, cold = self._run(root, cache_path, config, fingerprint)
        assert rule_ids(cold_findings) == ["RL305"]
        warm_findings, warm = self._run(root, cache_path, config, fingerprint)
        assert warm_findings == cold_findings
        assert warm["inter_module_runs"] == 0
        assert warm["parsed"] == 0

    def test_protocol_edit_busts_the_cache(self, tmp_path):
        root = make_tree(tmp_path, dict(self.FILES))
        cache_path = tmp_path / "cache.json"

        config = LintConfig(select=("RL301",), protocols=order_protocols())
        fingerprint = config_fingerprint(config, sorted(all_rule_ids()))
        self._run(root, cache_path, config, fingerprint)

        # A different protocol table must produce a different fingerprint,
        # so the loaded cache degrades to cold.
        changed = LintConfig(
            select=("RL301",), protocols=order_protocols("app.other")
        )
        changed_fp = config_fingerprint(changed, sorted(all_rule_ids()))
        assert changed_fp != fingerprint
        _, stats = self._run(root, cache_path, changed, changed_fp)
        assert stats["inter_module_runs"] == 4
        assert stats["inter_cache_hits"] == 0


def copy_real_tree(tmp_path):
    """Copy src/repro plus the shipped protocol table into tmp_path."""
    shutil.copytree(REPO_ROOT / "src" / "repro", tmp_path / "src" / "repro")
    shutil.copy(REPO_ROOT / "pyproject.toml", tmp_path / "pyproject.toml")
    return tmp_path


def lint_real(root, *select):
    config = load_config(root / "pyproject.toml").with_overrides(
        select=list(select)
    )
    return lint_paths([root / "src"], config)


def mutate(path, old, new):
    text = path.read_text()
    assert old in text, f"mutation anchor not found in {path}"
    path.write_text(text.replace(old, new, 1))


class TestSeededBugsInRealSources:
    """One realistic seeded bug per interprocedural rule, each caught."""

    def test_rl301_payload_fsync_removed_from_manifest_swap(self, tmp_path):
        root = copy_real_tree(tmp_path)
        mutate(
            root / "src/repro/core/shards.py",
            "    tmp.write_text(json.dumps(manifest, indent=2), encoding=\"utf-8\")\n"
            "    fsync_file(tmp)\n",
            "    tmp.write_text(json.dumps(manifest, indent=2), encoding=\"utf-8\")\n",
        )
        findings = lint_real(root, "RL301")
        assert rule_ids(findings) == ["RL301"]
        assert findings[0].path.endswith("core/shards.py")
        assert "not preceded by `fsync`" in findings[0].message

    def test_rl301_directory_fsync_removed_after_publish(self, tmp_path):
        root = copy_real_tree(tmp_path)
        mutate(
            root / "src/repro/core/shards.py",
            "    os.replace(tmp, root / MANIFEST_NAME)\n"
            "    # Without a directory fsync the rename itself may not survive a\n"
            "    # crash, leaving the old generation authoritative after an ack.\n"
            "    _fsync_dir(root)\n",
            "    os.replace(tmp, root / MANIFEST_NAME)\n",
        )
        findings = lint_real(root, "RL301")
        assert rule_ids(findings) == ["RL301"]
        assert "not followed by `fsync`" in findings[0].message

    def test_rl302_fsync_removed_from_wal_ack_path(self, tmp_path):
        root = copy_real_tree(tmp_path)
        mutate(
            root / "src/repro/wal/segment.py",
            "        self._handle.flush()\n"
            "        os.fsync(self._handle.fileno())\n",
            "        self._handle.flush()\n",
        )
        findings = lint_real(root, "RL302")
        assert rule_ids(findings) == ["RL302"]
        assert findings[0].severity == "error"
        assert findings[0].path.endswith("wal/segment.py")
        assert "SegmentWriter.sync" in findings[0].message

    def test_rl303_engine_closed_before_ingest(self, tmp_path):
        root = copy_real_tree(tmp_path)
        mutate(
            root / "src/repro/cli.py",
            "    started = time.perf_counter()\n"
            "    gids = engine.ingest(list(value_rows(dataset)))\n"
            "    elapsed = time.perf_counter() - started\n"
            "    engine.close()\n",
            "    started = time.perf_counter()\n"
            "    engine.close()\n"
            "    gids = engine.ingest(list(value_rows(dataset)))\n"
            "    elapsed = time.perf_counter() - started\n",
        )
        findings = lint_real(root, "RL303")
        assert rule_ids(findings) == ["RL303"]
        assert findings[0].path.endswith("cli.py")
        assert "engine.ingest()" in findings[0].message

    def test_rl304_rng_in_worker_reached_kernel(self, tmp_path):
        root = copy_real_tree(tmp_path)
        query = root / "src/repro/hamming/query.py"
        text = query.read_text()
        anchor = "def batch_query("
        assert anchor in text
        insert_at = text.index("\n", text.index(") ->", text.index(anchor)))
        # Drop a process-global RNG draw into the kernel both serve-layer
        # parallel workers reach through the call graph (inserted right
        # after the signature, before the docstring).
        query.write_text(
            text[: insert_at + 1]
            + "    _jitter = np.random.random()\n"
            + text[insert_at + 1 :]
        )
        findings = lint_real(root, "RL304")
        assert set(rule_ids(findings)) == {"RL304"}
        assert any("batch_query" in f.message for f in findings)
        assert any(f.path.endswith("serve/sharded.py") for f in findings)

    def test_rl305_helper_returned_handle_leaked(self, tmp_path):
        root = copy_real_tree(tmp_path)
        segment = root / "src/repro/wal/segment.py"
        segment.write_text(
            segment.read_text()
            + textwrap.dedent(
                """

                def _open_segment(path):
                    return open(path, "rb")


                def segment_bytes(path):
                    handle = _open_segment(path)
                    data = handle.read()
                    return len(data)
                """
            )
        )
        findings = lint_real(root, "RL305")
        assert rule_ids(findings) == ["RL305"]
        assert "_open_segment" in findings[0].message

    def test_unmutated_tree_is_clean(self, tmp_path):
        root = copy_real_tree(tmp_path)
        findings = lint_real(root, "RL301", "RL302", "RL303", "RL304", "RL305")
        assert findings == [], [f.format() for f in findings]


class TestInterSelfHosting:
    """Acceptance: src/ lints clean with the full 21-rule set."""

    def test_inter_rules_clean_on_src(self):
        config = load_config(REPO_ROOT / "pyproject.toml").with_overrides(
            select=["RL301", "RL302", "RL303", "RL304", "RL305"]
        )
        findings = lint_paths([REPO_ROOT / "src"], config)
        assert findings == [], [f.format() for f in findings]

    def test_no_unused_suppressions_on_src(self):
        config = load_config(REPO_ROOT / "pyproject.toml").with_overrides(
            warn_unused_suppressions=True
        )
        findings = lint_paths([REPO_ROOT / "src"], config)
        assert findings == [], [f.format() for f in findings]
