"""Tests for repro.baselines.smeb."""

import pytest

from repro.baselines.smeb import SMEBLinker
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.evaluation.metrics import evaluate_linkage


@pytest.fixture(scope="module")
def problem():
    return build_linkage_problem(NCVRGenerator(), 120, scheme_pl(), seed=41)


class TestConfiguration:
    def test_blocking_threshold_is_max_attribute_threshold(self):
        linker = SMEBLinker({"f1": 3.0, "f2": 4.0}, n_attributes=2)
        assert linker.blocking_threshold == pytest.approx(4.0)

    def test_paper_table_counts_reproduced(self):
        """The paper's L = 29 (PL) and L = 194 (PH) fall out of the
        attribute-threshold calibration with a shared w = 9."""
        pl = SMEBLinker({f"f{i}": 4.5 for i in (1, 2, 3, 4)}, n_attributes=4, k=5)
        assert 25 <= pl.computed_n_tables <= 33
        ph = SMEBLinker(
            {"f1": 4.5, "f2": 4.5, "f3": 7.7}, n_attributes=4, k=5, w=9.0
        )
        assert 170 <= ph.computed_n_tables <= 220

    def test_auto_bucket_width(self):
        linker = SMEBLinker({"f1": 4.5}, n_attributes=1)
        assert linker.w == pytest.approx(9.0)

    def test_tables_capped(self):
        linker = SMEBLinker({"f1": 4.5}, n_attributes=1, w=1.0, max_tables=50)
        assert linker.computed_n_tables == 50

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError):
            SMEBLinker({"f9": 1.0}, n_attributes=2)

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ValueError):
            SMEBLinker({}, n_attributes=2)


class TestLinkage:
    def test_moderate_completeness_shape(self, problem):
        """SM-EB finds a substantial share of matches but trails cBV-HB
        (the paper's Figure 9 shape)."""
        linker = SMEBLinker(
            {"f1": 4.5, "f2": 4.5, "f3": 4.5, "f4": 4.5},
            n_attributes=4, d=10, pivot_sample=30, seed=1,
        )
        result = linker.link(problem.dataset_a, problem.dataset_b)
        quality = evaluate_linkage(
            result.matches, problem.true_matches, result.n_candidates,
            problem.comparison_space,
        )
        assert quality.pairs_completeness >= 0.4
        assert result.n_candidates > 0

    def test_embedding_dominates_runtime(self, problem):
        """Figure 8(b): StringMap embedding is the expensive stage."""
        linker = SMEBLinker(
            {"f1": 4.5, "f2": 4.5, "f3": 4.5, "f4": 4.5},
            n_attributes=4, d=8, pivot_sample=25, seed=2,
        )
        result = linker.link(problem.dataset_a, problem.dataset_b)
        assert result.timings["embed"] > result.timings["index"]

    def test_matches_respect_attribute_thresholds(self, problem):
        linker = SMEBLinker(
            {"f1": 4.5, "f2": 4.5}, n_attributes=4, d=8, pivot_sample=25, seed=3
        )
        result = linker.link(problem.dataset_a, problem.dataset_b)
        for name, threshold in linker.attribute_thresholds.items():
            if result.attribute_distances:
                assert (result.attribute_distances[name] <= threshold).all()
