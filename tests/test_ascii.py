"""Tests for repro.evaluation.ascii — terminal charts."""

import pytest

from repro.evaluation.ascii import bar_chart, line_chart, sparkline


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart({"cBV-HB": 0.98, "HARRA": 0.49}, width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("cBV-HB |")
        # The longer bar belongs to the larger value.
        assert lines[0].count("█") > lines[1].count("█")

    def test_max_value_scaling(self):
        text = bar_chart({"a": 0.5}, width=10, max_value=1.0)
        assert text.count("█") == 5

    def test_values_capped_at_width(self):
        text = bar_chart({"a": 5.0}, width=10, max_value=1.0)
        assert text.count("█") == 10

    def test_labels_aligned(self):
        text = bar_chart({"x": 1.0, "longer": 1.0})
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_zero_values_ok(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "0" in text


class TestLineChart:
    def test_shape(self):
        text = line_chart([1, 2, 3, 4], [0.1, 0.4, 0.2, 0.9], height=5)
        lines = text.splitlines()
        assert len(lines) == 7  # 5 rows + axis + labels
        assert "●" in text

    def test_extremes_on_boundary_rows(self):
        text = line_chart([1, 2], [0.0, 1.0], height=4)
        lines = text.splitlines()
        assert "●" in lines[0]  # max on top row
        assert "●" in lines[3]  # min on bottom row

    def test_title(self):
        text = line_chart([1], [1.0], title="PC vs K")
        assert text.splitlines()[0] == "PC vs K"

    def test_flat_series(self):
        text = line_chart([1, 2, 3], [5.0, 5.0, 5.0])
        assert text.count("●") == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([1], [1.0, 2.0])
        with pytest.raises(ValueError):
            line_chart([], [])
        with pytest.raises(ValueError):
            line_chart([1], [1.0], height=1)


class TestSparkline:
    def test_symmetry(self):
        assert sparkline([1, 2, 3, 2, 1]) == "▁▄█▄▁"

    def test_flat(self):
        assert sparkline([2, 2]) == "▁▁"

    def test_length(self):
        assert len(sparkline(range(20))) == 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
