"""Golden parity: every linker reproduces its pre-pipeline output exactly.

``tests/data/golden_parity.json`` was captured from the implementations
*before* the stage-pipeline refactor; these tests prove the port onto
:class:`repro.pipeline.LinkagePipeline` changed no observable linkage
behaviour — matches and candidate counts byte-identical, including across
``n_jobs`` settings and candidate chunk budgets.
"""

import json

import pytest

from tests.golden_linkers import (
    GOLDEN_PATH,
    PREFILTER_TWINS,
    RUNNERS,
    make_problem,
    outcome_payload,
)


@pytest.fixture(scope="module")
def problem():
    return make_problem()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_covers_every_runner(golden):
    assert set(golden) == set(RUNNERS)


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_linker_matches_golden(name, problem, golden):
    got = outcome_payload(RUNNERS[name](problem))
    want = golden[name]
    assert got["n_candidates"] == want["n_candidates"]
    assert got["n_matches"] == want["n_matches"]
    assert got["matches"] == want["matches"]


@pytest.mark.parametrize("prefilter_name", sorted(PREFILTER_TWINS))
def test_prefilter_golden_equals_plain(prefilter_name, golden):
    """The sketch prefilter is invisible in golden output, not just close."""
    assert golden[prefilter_name] == golden[PREFILTER_TWINS[prefilter_name]]
