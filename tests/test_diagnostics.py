"""Tests for repro.evaluation.diagnostics — blocking selectivity."""

import numpy as np
import pytest

from repro.evaluation.diagnostics import (
    _gini,
    diagnose_blocking,
    selectivity_sweep,
)
from repro.hamming.bitmatrix import scatter_bits


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(81)
    mask = rng.random((400, 120)) < 0.25
    rows, bits = np.nonzero(mask)
    return scatter_bits(400, 120, rows, bits)


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini(np.asarray([5, 5, 5, 5])) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        assert _gini(np.asarray([0, 0, 0, 100])) > 0.7

    def test_empty(self):
        assert _gini(np.asarray([], dtype=np.int64)) == 0.0


class TestDiagnoseBlocking:
    def test_fields_consistent(self, matrix):
        diag = diagnose_blocking(matrix, k=20, threshold=4, seed=1)
        assert diag.n_records == 400
        assert diag.n_buckets >= diag.n_tables  # at least one bucket per table
        assert diag.max_bucket_size >= diag.mean_bucket_size
        assert 0.0 <= diag.gini <= 1.0
        assert diag.expected_pairs_per_table > 0

    def test_small_k_overpopulates(self, matrix):
        """The §4.2 claim: small K -> few, overpopulated buckets."""
        small = diagnose_blocking(matrix, k=4, threshold=4, n_tables=4, seed=1)
        large = diagnose_blocking(matrix, k=30, threshold=4, n_tables=4, seed=1)
        assert small.n_buckets < large.n_buckets
        assert small.max_bucket_size > large.max_bucket_size
        assert small.expected_pairs_per_table > large.expected_pairs_per_table

    def test_selectivity_monotone_in_k(self, matrix):
        sweep = selectivity_sweep(matrix, (5, 15, 30), threshold=4, seed=2)
        selectivities = [d.selectivity for d in sweep]
        assert selectivities == sorted(selectivities)
