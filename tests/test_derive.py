"""Tests for repro.rules.derive — thresholds from error models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qgram import QGramScheme
from repro.data.perturb import ALL_OPERATIONS, Operation, apply_operation
from repro.rules.ast import And
from repro.rules.derive import (
    derive_thresholds,
    error_budget,
    operation_bit_cost,
)
from repro.text.alphabet import TEXT_ALPHABET

import numpy as np


class TestOperationBitCost:
    def test_section_5_1_bounds_for_bigrams(self):
        assert operation_bit_cost(Operation.SUBSTITUTE) == 4
        assert operation_bit_cost(Operation.INSERT) == 3
        assert operation_bit_cost(Operation.DELETE) == 3

    def test_general_q(self):
        assert operation_bit_cost(Operation.SUBSTITUTE, q=3) == 6
        assert operation_bit_cost(Operation.DELETE, q=3) == 5

    def test_q1_rejected(self):
        with pytest.raises(ValueError):
            operation_bit_cost(Operation.SUBSTITUTE, q=1)


class TestErrorBudget:
    def test_single_edit_is_4(self):
        assert error_budget(1) == 4

    def test_two_edits_is_8(self):
        assert error_budget(2) == 8

    def test_restricted_operations(self):
        assert error_budget(2, operations=[Operation.DELETE]) == 6

    def test_zero_errors(self):
        assert error_budget(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            error_budget(-1)
        with pytest.raises(ValueError):
            error_budget(1, operations=[])


class TestDeriveThresholds:
    def test_paper_ph_model(self):
        derived = derive_thresholds({"f1": 1, "f2": 1, "f3": 2})
        assert derived.attribute_thresholds == {"f1": 4, "f2": 4, "f3": 8}
        assert derived.record_threshold == 16

    def test_rule_shape(self):
        derived = derive_thresholds({"f1": 1, "f2": 2})
        rule = derived.rule()
        assert isinstance(rule, And)
        assert str(rule) == "[(f1 <= 4) & (f2 <= 8)]"

    def test_single_attribute_rule(self):
        derived = derive_thresholds({"f1": 1})
        assert str(derived.rule()) == "(f1 <= 4)"

    def test_zero_error_attributes_excluded_from_rule(self):
        derived = derive_thresholds({"f1": 1, "f2": 0})
        assert str(derived.rule()) == "(f1 <= 4)"

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="constrains no attribute"):
            derive_thresholds({"f1": 0}).rule()

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            derive_thresholds({})


class TestBudgetSoundness:
    """The derived budgets really are upper bounds on observed distances."""

    @given(
        st.text(alphabet="ABCDEFGHIJ", min_size=3, max_size=12),
        st.integers(1, 3),
        st.integers(0, 5000),
    )
    @settings(max_examples=80)
    def test_budget_covers_random_edit_sequences(self, value, n_errors, seed):
        scheme = QGramScheme(alphabet=TEXT_ALPHABET)
        rng = np.random.default_rng(seed)
        perturbed = value
        for __ in range(n_errors):
            op = ALL_OPERATIONS[int(rng.integers(0, 3))]
            perturbed = apply_operation(perturbed, op, TEXT_ALPHABET, rng)
        distance = scheme.vector(value).hamming(scheme.vector(perturbed))
        assert distance <= error_budget(n_errors)
