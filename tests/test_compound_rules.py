"""Section 5.4's compound classification rules, end to end.

The paper sketches three compound shapes:

    C1' = [(f1<=t) & (f2<=t)] | [(f3<=t) & (f4<=t)]   two AND structures, OR'd
    C2' = [(f1<=t) | (f2<=t)] & [(f3<=t) | (f4<=t)]   four OR structures, AND'd
    C3' = (f1<=t) & !(f2<=t)                           positive + exclusion

These tests verify the compiled blocking structures and, on small
exhaustively-checkable datasets, that the formulated pairs honour the
compound semantics (membership in either AND structure for C1', in both
OR structures for C2').
"""

import numpy as np
import pytest

from repro.core.cvector import CVectorEncoder
from repro.core.encoder import RecordEncoder
from repro.core.qgram import QGramScheme
from repro.rules.blocking import RuleAwareBlocker
from repro.rules.parser import parse_rule
from repro.text.alphabet import TEXT_ALPHABET

K = {"f1": 4, "f2": 4, "f3": 4, "f4": 4}
SCHEME = QGramScheme(alphabet=TEXT_ALPHABET)


@pytest.fixture
def encoder():
    return RecordEncoder(
        [CVectorEncoder(20, scheme=SCHEME, seed=s) for s in range(4)],
        names=["f1", "f2", "f3", "f4"],
    )


def _exhaustive_truth(rule, encoder, matrix_a, matrix_b):
    n_a, n_b = matrix_a.n_rows, matrix_b.n_rows
    rows_a = np.repeat(np.arange(n_a), n_b)
    rows_b = np.tile(np.arange(n_b), n_a)
    distances = encoder.attribute_distances(matrix_a, rows_a, matrix_b, rows_b)
    keep = np.asarray(rule.evaluate(distances))
    return set(zip(rows_a[keep].tolist(), rows_b[keep].tolist()))


RECORDS_A = [
    ("ALPHA", "BRAVO", "CHARLIE", "DELTA"),
    ("MIKE", "NOVEMBER", "OSCAR", "PAPA"),
    ("VICTOR", "WHISKEY", "XRAY", "YANKEE"),
]
# Far filler values use distinct bigrams so their c-vectors set ~5 bits
# each (repeated-letter strings like 'ZZZZZZ' collapse to a single bit and
# would be accidentally 'close' to everything).
RECORDS_B = [
    # Satisfies the left conjunct only (f1, f2 close; f3, f4 far).
    ("ALPHA", "BRAVO", "QWZXVK", "PLMKJH"),
    # Satisfies the right conjunct only.
    ("QWZXVK", "PLMKJH", "CHARLIE", "DELTA"),
    # Satisfies neither.
    ("QWZXVK", "PLMKJH", "WSXEDC", "RFVTGB"),
]


class TestCompoundC1Prime:
    RULE = parse_rule("[(f1<=4) & (f2<=4)] | [(f3<=4) & (f4<=4)]")

    def test_two_and_structures_compiled(self, encoder):
        blocker = RuleAwareBlocker(self.RULE, encoder, k=K, seed=1)
        assert len(blocker.structures) == 2
        assert blocker.structures[0].attributes == ("f1", "f2")
        assert blocker.structures[1].attributes == ("f3", "f4")

    def test_pair_in_either_structure_is_returned(self, encoder):
        matrix_a = encoder.encode_dataset(RECORDS_A)
        matrix_b = encoder.encode_dataset(RECORDS_B)
        blocker = RuleAwareBlocker(self.RULE, encoder, k=K, seed=2)
        blocker.index(matrix_a)
        rows_a, rows_b, __ = blocker.match(matrix_b)
        found = set(zip(rows_a.tolist(), rows_b.tolist()))
        assert (0, 0) in found  # left conjunct
        assert (0, 1) in found  # right conjunct
        assert (0, 2) not in found

    def test_matches_subset_of_rule_truth(self, encoder):
        matrix_a = encoder.encode_dataset(RECORDS_A)
        matrix_b = encoder.encode_dataset(RECORDS_B)
        blocker = RuleAwareBlocker(self.RULE, encoder, k=K, seed=3)
        blocker.index(matrix_a)
        rows_a, rows_b, __ = blocker.match(matrix_b)
        found = set(zip(rows_a.tolist(), rows_b.tolist()))
        truth = _exhaustive_truth(self.RULE, encoder, matrix_a, matrix_b)
        assert found <= truth


class TestCompoundC2Prime:
    RULE = parse_rule("[(f1<=4) | (f2<=4)] & [(f3<=4) | (f4<=4)]")

    def test_four_or_structures_compiled(self, encoder):
        blocker = RuleAwareBlocker(self.RULE, encoder, k=K, seed=4)
        assert len(blocker.structures) == 4

    def test_requires_membership_in_both_or_blocks(self, encoder):
        matrix_a = encoder.encode_dataset(RECORDS_A)
        matrix_b = encoder.encode_dataset(RECORDS_B)
        blocker = RuleAwareBlocker(self.RULE, encoder, k=K, seed=5)
        blocker.index(matrix_a)
        rows_a, rows_b, __ = blocker.match(matrix_b)
        found = set(zip(rows_a.tolist(), rows_b.tolist()))
        # (0,0) satisfies only the first OR block; (0,1) only the second.
        assert (0, 0) not in found
        assert (0, 1) not in found

    def test_pair_satisfying_both_blocks_found(self, encoder):
        matrix_a = encoder.encode_dataset(RECORDS_A)
        both = [("ALPHA", "QQQQQQ", "CHARLIE", "WWWWWW")]  # f1 and f3 close
        matrix_b = encoder.encode_dataset(both)
        blocker = RuleAwareBlocker(self.RULE, encoder, k=K, seed=6)
        blocker.index(matrix_a)
        rows_a, rows_b, __ = blocker.match(matrix_b)
        assert (0, 0) in set(zip(rows_a.tolist(), rows_b.tolist()))


class TestMixedAndWithOrChild:
    """The paper's C2 from the experiments: [(f1 & f2)] | f3 nests an AND
    structure beside a bare comparison under one OR."""

    RULE = parse_rule("[(f1<=4) & (f2<=4)] | (f3<=4)")

    def test_structures(self, encoder):
        blocker = RuleAwareBlocker(self.RULE, encoder, k=K, seed=7)
        assert len(blocker.structures) == 2
        # Definition 5: both arms share the OR's L.
        assert blocker.structures[0].n_tables == blocker.structures[1].n_tables

    def test_semantics(self, encoder):
        matrix_a = encoder.encode_dataset(RECORDS_A)
        matrix_b = encoder.encode_dataset(RECORDS_B)
        blocker = RuleAwareBlocker(self.RULE, encoder, k=K, seed=8)
        blocker.index(matrix_a)
        rows_a, rows_b, __ = blocker.match(matrix_b)
        found = set(zip(rows_a.tolist(), rows_b.tolist()))
        assert (0, 0) in found  # via the AND arm
        assert (0, 1) in found  # via the f3 arm


class TestNotOverCompound:
    """NOT over a compound child: exclusion by the whole sub-plan."""

    RULE = parse_rule("(f1<=4) & !((f3<=4) | (f4<=4))")

    def test_compiles_and_excludes(self, encoder):
        matrix_a = encoder.encode_dataset(RECORDS_A)
        matrix_b = encoder.encode_dataset(
            [
                # f1 close but f3 close too -> the NOT sub-plan excludes it.
                ("ALPHA", "QWZXVK", "CHARLIE", "WSXEDC"),
                # f1 close, f3 and f4 far -> kept.
                ("ALPHA", "QWZXVK", "PLMKJH", "RFVTGB"),
            ]
        )
        # NOT exclusion is membership-based: with a small K, pairs just
        # above the threshold still collide in the exclusion structure and
        # get over-excluded.  A selective K keeps the exclusion sharp.
        sharp_k = {name: 10 for name in K}
        blocker = RuleAwareBlocker(self.RULE, encoder, k=sharp_k, seed=9)
        blocker.index(matrix_a)
        rows_a, rows_b, __ = blocker.match(matrix_b)
        found = set(zip(rows_a.tolist(), rows_b.tolist()))
        assert (0, 0) not in found
        assert (0, 1) in found
