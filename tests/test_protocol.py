"""Tests for repro.protocol — the three-party linkage workflow."""

import pytest

from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.protocol import (
    DataCustodian,
    EncodedDataset,
    EncodingAgreement,
    LinkageUnit,
)
from repro.rules.parser import parse_rule


@pytest.fixture(scope="module")
def problem():
    return build_linkage_problem(NCVRGenerator(), 300, scheme_pl(), seed=61)


@pytest.fixture(scope="module")
def agreement(problem):
    return EncodingAgreement.negotiate(
        [problem.dataset_a, problem.dataset_b], seed=61
    )


class TestAgreement:
    def test_widths_from_theorem_1(self, agreement):
        # NCVR-like statistics give approximately the Table 3 widths.
        assert 100 <= agreement.total_bits <= 140
        assert len(agreement.widths) == 4

    def test_same_agreement_same_encoder(self, agreement):
        e1 = agreement.build_encoder()
        e2 = agreement.build_encoder()
        values = ("JONES", "SMITH", "12 MAIN ST", "BOONE")
        assert e1.encode(values) == e2.encode(values)

    def test_schema_mismatch_rejected(self, problem):
        from repro.data import DBLPGenerator

        other = DBLPGenerator().generate(20, seed=1)
        with pytest.raises(ValueError, match="disagree"):
            EncodingAgreement.negotiate([problem.dataset_a, other], seed=1)

    def test_arity_validated(self):
        with pytest.raises(ValueError):
            EncodingAgreement(("a", "b"), (5.0,), seed=1)
        with pytest.raises(ValueError):
            EncodingAgreement((), (), seed=1)


class TestCustodian:
    def test_encoding_exposes_no_strings(self, problem, agreement):
        alice = DataCustodian("alice", problem.dataset_a)
        encoded = alice.encode(agreement)
        assert isinstance(encoded, EncodedDataset)
        assert len(encoded) == len(problem.dataset_a)
        # The submission consists of ids and a packed bit matrix only.
        assert set(vars(encoded)) <= {"custodian", "record_ids", "matrix"}
        assert all(isinstance(rid, str) for rid in encoded.record_ids)

    def test_schema_must_match_agreement(self, agreement):
        from repro.data import DBLPGenerator

        bob = DataCustodian("bob", DBLPGenerator().generate(10, seed=2))
        with pytest.raises(ValueError, match="do not match"):
            bob.encode(agreement)

    def test_id_count_validated(self, problem, agreement):
        alice = DataCustodian("alice", problem.dataset_a)
        encoded = alice.encode(agreement)
        with pytest.raises(ValueError):
            EncodedDataset("x", encoded.record_ids[:-1], encoded.matrix)


class TestLinkageUnit:
    def test_end_to_end_by_ids(self, problem, agreement):
        alice = DataCustodian("alice", problem.dataset_a)
        bob = DataCustodian("bob", problem.dataset_b)
        charlie = LinkageUnit(agreement, threshold=4, k=30, seed=61)
        matched = charlie.link(alice.encode(agreement), bob.encode(agreement))
        truth_ids = {
            (problem.dataset_a[a].record_id, problem.dataset_b[b].record_id)
            for a, b in problem.true_matches
        }
        found = set(matched) & truth_ids
        assert len(found) / len(truth_ids) >= 0.9

    def test_rule_based_unit(self, problem, agreement):
        alice = DataCustodian("alice", problem.dataset_a)
        bob = DataCustodian("bob", problem.dataset_b)
        rule = parse_rule("(FirstName<=4) & (LastName<=4)")
        charlie = LinkageUnit(
            agreement, rule=rule, k={"FirstName": 5, "LastName": 5}, seed=61
        )
        matched = charlie.link(alice.encode(agreement), bob.encode(agreement))
        assert matched  # pairs surviving the rule exist

    def test_three_custodians(self, problem, agreement):
        parties = [
            DataCustodian("alice", problem.dataset_a),
            DataCustodian("bob", problem.dataset_b),
            DataCustodian("carol", problem.dataset_a),
        ]
        charlie = LinkageUnit(agreement, threshold=4, k=25, seed=61)
        encoded = [p.encode(agreement) for p in parties]
        results = charlie.link_all(encoded)
        assert set(results) == {("alice", "bob"), ("alice", "carol"), ("bob", "carol")}
        # alice and carol hold identical data: every record self-matches
        # (possibly alongside household duplicates).
        identical = set(results[("alice", "carol")])
        sample = problem.dataset_a[0].record_id
        assert (sample, sample) in identical

    def test_mode_validation(self, agreement):
        with pytest.raises(ValueError):
            LinkageUnit(agreement)
        with pytest.raises(ValueError):
            LinkageUnit(agreement, threshold=4, rule=parse_rule("(FirstName<=4)"))

    def test_layout_mismatch_rejected(self, problem, agreement):
        alice = DataCustodian("alice", problem.dataset_a)
        encoded = alice.encode(agreement)
        other = EncodingAgreement(
            agreement.attribute_names,
            tuple(b + 5 for b in agreement.qgram_counts),
            seed=99,
        )
        charlie = LinkageUnit(other, threshold=4, k=25)
        with pytest.raises(ValueError, match="layout"):
            charlie.link(encoded, encoded)
