"""Tests for repro.baselines.stringmap."""

import numpy as np
import pytest

from repro.baselines.stringmap import StringMapEmbedder
from repro.text.edit_distance import levenshtein

NAMES = [
    "JONES", "JONAS", "SMITH", "SMYTH", "GARCIA", "GARZIA", "WALKER",
    "WOLKER", "MARTINEZ", "MARTINES", "THOMPSON", "THOMSON", "ANDERSON",
    "ANDERSEN", "WASHINGTON", "WASHINGTEN", "LEE", "LI", "BROWN", "BRAUN",
]


@pytest.fixture(scope="module")
def embedded():
    embedder = StringMapEmbedder(d=10, seed=0)
    return embedder, embedder.fit_transform(NAMES)


class TestBasics:
    def test_shape(self, embedded):
        __, points = embedded
        assert points.shape == (len(NAMES), 10)

    def test_deterministic(self):
        e1 = StringMapEmbedder(d=5, seed=3).fit_transform(NAMES)
        e2 = StringMapEmbedder(d=5, seed=3).fit_transform(NAMES)
        assert np.allclose(e1, e2)

    def test_identical_strings_identical_points(self, embedded):
        embedder, __ = embedded
        points = embedder.transform(["JONES", "JONES"])
        assert np.allclose(points[0], points[1])

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            StringMapEmbedder(d=3).transform(["A"])

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError):
            StringMapEmbedder(d=3).fit([])

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            StringMapEmbedder(d=0)

    def test_degenerate_identical_corpus(self):
        points = StringMapEmbedder(d=4, seed=1).fit_transform(["SAME"] * 5)
        assert np.allclose(points, points[0])


class TestDistancePreservation:
    def test_similar_strings_closer_than_dissimilar(self, embedded):
        embedder, points = embedded
        def euclid(i, j):
            return float(np.linalg.norm(points[i] - points[j]))
        # JONES-JONAS (ed 1) should embed much closer than JONES-WASHINGTON.
        close = euclid(NAMES.index("JONES"), NAMES.index("JONAS"))
        far = euclid(NAMES.index("JONES"), NAMES.index("WASHINGTON"))
        assert close < far

    def test_rank_correlation_with_edit_distance(self, embedded):
        """Across all pairs, embedded distance correlates with edit distance."""
        __, points = embedded
        ed, em = [], []
        for i in range(len(NAMES)):
            for j in range(i + 1, len(NAMES)):
                ed.append(levenshtein(NAMES[i], NAMES[j]))
                em.append(float(np.linalg.norm(points[i] - points[j])))
        ed, em = np.asarray(ed, dtype=float), np.asarray(em)
        correlation = np.corrcoef(ed, em)[0, 1]
        assert correlation > 0.7

    def test_unseen_strings_transform(self, embedded):
        embedder, __ = embedded
        points = embedder.transform(["JOHNSON", "JOHNSTON"])
        distance = float(np.linalg.norm(points[0] - points[1]))
        far = embedder.transform(["JOHNSON", "XYZQW"])
        assert distance < float(np.linalg.norm(far[0] - far[1]))
