"""Tests for the hot-path engine: interning, chunked candidates, fan-out.

Covers the three layers of the performance engine plus the invariants the
engine must never break: identical output for every ``n_jobs`` setting and
for every ``max_chunk_pairs`` budget.
"""

import json

import numpy as np
import pytest

from repro.core.cvector import CVectorEncoder, intern_column
from repro.core.encoder import RecordEncoder
from repro.core.linker import CompactHammingLinker, StreamingLinker
from repro.core.qgram import (
    QGramScheme,
    clear_index_set_cache,
    index_set_cache_info,
    qgram_index_set,
)
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.data.generators import EXPERIMENT_SCHEME
from repro.hamming.bitmatrix import BitMatrix, scatter_bits
from repro.hamming.lsh import HammingLSH
from repro.perf import LogHistogram, ParallelConfig, parallel_map, resolve_n_jobs


def random_matrix(seed, n_rows, n_bits, density=0.3):
    rng = np.random.default_rng(seed)
    mask = rng.random((n_rows, n_bits)) < density
    rows, bits = np.nonzero(mask)
    return scatter_bits(n_rows, n_bits, rows, bits)


RECORDS = [
    ("JOHN", "SMITH"),
    ("JANE", "SMITH"),
    ("JOHN", "DOE"),
    ("JOHN", "SMITH"),
    ("", "SMITH"),
] * 8


class TestInternedEncoding:
    def test_interned_index_set_matches_uncached(self):
        scheme = QGramScheme()
        for value in ("JOHN", "SMITH", "", "A"):
            assert scheme.index_set(value) == qgram_index_set(value)

    def test_cache_hits_on_repeated_values(self):
        clear_index_set_cache()
        scheme = QGramScheme()
        scheme.index_set("REPEATED")
        before_hits = index_set_cache_info()[0]
        scheme.index_set("REPEATED")
        assert index_set_cache_info()[0] == before_hits + 1

    def test_intern_column_counts(self):
        column = intern_column(["JOHN", "JANE", "JOHN", "JOHN"], QGramScheme())
        assert column.n_values == 4
        assert column.n_unique == 2
        assert column.hit_rate == pytest.approx(0.5)

    def test_encode_all_matches_per_string_encode(self):
        enc = CVectorEncoder(64, seed=1)
        values = ["JOHN", "", "JOHN", "AB", "SMITH"]
        expected = BitMatrix.from_vectors([enc.encode(v) for v in values])
        assert enc.encode_all(values) == expected

    def test_encode_dataset_matches_per_record_encode(self):
        enc = RecordEncoder.calibrated(RECORDS, seed=3)
        expected = BitMatrix.from_vectors([enc.encode(r) for r in RECORDS])
        assert enc.encode_dataset(RECORDS) == expected

    def test_encode_dataset_sharded_identical(self):
        enc = RecordEncoder.calibrated(RECORDS, seed=3)
        single = enc.encode_dataset(RECORDS)
        for config in (
            ParallelConfig(n_jobs=4),
            ParallelConfig(n_jobs=2, chunk_size=7),
            ParallelConfig(n_jobs=3, backend="thread"),
        ):
            assert enc.encode_dataset(RECORDS, parallel=config) == single

    def test_encode_dataset_reports_intern_stats(self):
        enc = RecordEncoder.calibrated(RECORDS, seed=3)
        stats = {}
        enc.encode_dataset(RECORDS, stats=stats)
        assert stats["intern_values"] == len(RECORDS) * 2
        assert 0.0 < stats["intern_hit_rate"] < 1.0

    def test_compact_indices_cached(self):
        enc = CVectorEncoder(64, seed=1)
        assert enc.compact_indices("JOHN") is enc.compact_indices("JOHN")


class TestParallelConfig:
    def test_defaults_single_process(self):
        config = ParallelConfig()
        assert config.n_jobs == 1
        assert config.effective_jobs == 1

    def test_zero_means_all_cores(self):
        assert ParallelConfig(n_jobs=0).effective_jobs == resolve_n_jobs(0) >= 1

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ParallelConfig(n_jobs=-1)
        with pytest.raises(ValueError):
            ParallelConfig(chunk_size=0)
        with pytest.raises(ValueError):
            ParallelConfig(backend="fiber")

    def test_shard_ranges_cover_everything_in_order(self):
        config = ParallelConfig(n_jobs=3, chunk_size=7)
        ranges = config.shard_ranges(20)
        assert ranges[0][0] == 0 and ranges[-1][1] == 20
        assert all(hi == ranges[i + 1][0] for i, (_, hi) in enumerate(ranges[:-1]))

    def test_shard_ranges_even_split_without_chunk_size(self):
        assert ParallelConfig(n_jobs=4).shard_ranges(10) == [
            (0, 3),
            (3, 6),
            (6, 9),
            (9, 10),
        ]
        assert ParallelConfig().shard_ranges(0) == []


def _square(x):
    return x * x


class TestParallelMap:
    def test_single_process_is_plain_loop(self):
        config = ParallelConfig(n_jobs=1)
        assert parallel_map(_square, [1, 2, 3], config) == [1, 4, 9]

    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_parallel_preserves_order(self, backend):
        config = ParallelConfig(n_jobs=3, backend=backend)
        assert parallel_map(_square, list(range(10)), config) == [
            x * x for x in range(10)
        ]

    def test_empty_items(self):
        assert parallel_map(_square, [], ParallelConfig(n_jobs=4)) == []


class TestChunkedCandidates:
    def setup_method(self):
        self.matrix_a = random_matrix(1, 120, 80)
        self.matrix_b = random_matrix(2, 90, 80)

    def _lsh(self, max_chunk_pairs=None):
        lsh = HammingLSH(
            n_bits=80, k=6, n_tables=8, seed=4, max_chunk_pairs=max_chunk_pairs
        )
        lsh.index(self.matrix_a)
        return lsh

    def test_chunked_equals_unchunked_for_any_budget(self):
        ref_a, ref_b = self._lsh().candidate_pairs(self.matrix_b)
        for budget in (1, 13, 128, 10**9):
            got_a, got_b = self._lsh(budget).candidate_pairs(self.matrix_b)
            assert np.array_equal(got_a, ref_a)
            assert np.array_equal(got_b, ref_b)

    def test_chunks_are_disjoint_and_bounded(self):
        budget = 50
        lsh = self._lsh(budget)
        n_b = self.matrix_b.n_rows
        encoded_chunks = [
            a * n_b + b for a, b in lsh.candidate_chunks(self.matrix_b)
        ]
        assert all(chunk.size <= budget for chunk in encoded_chunks)
        merged = np.concatenate(encoded_chunks)
        assert merged.size == np.unique(merged).size

    def test_counters_account_for_duplicates(self):
        counters = {}
        lsh = self._lsh(64)
        rows_a, _ = lsh.candidate_pairs(self.matrix_b, counters=counters)
        assert counters["pairs_unique"] == rows_a.size
        assert counters["pairs_generated"] >= counters["pairs_unique"]
        assert (
            counters["pairs_duplicates"]
            == counters["pairs_generated"] - counters["pairs_unique"]
        )
        assert counters["peak_chunk_pairs"] <= 64

    def test_rejects_invalid_budget(self):
        with pytest.raises(ValueError):
            HammingLSH(n_bits=8, k=2, n_tables=1, max_chunk_pairs=0)


class TestLinkageInvariance:
    """Same seed => byte-identical results for every engine setting."""

    @pytest.fixture(scope="class")
    def problem(self):
        return build_linkage_problem(NCVRGenerator(), 250, scheme_pl(), seed=7)

    @pytest.fixture(scope="class")
    def reference(self, problem):
        linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=7)
        return linker.link(problem.dataset_a, problem.dataset_b)

    def _assert_identical(self, result, reference):
        assert np.array_equal(result.rows_a, reference.rows_a)
        assert np.array_equal(result.rows_b, reference.rows_b)
        assert np.array_equal(result.record_distances, reference.record_distances)
        assert result.n_candidates == reference.n_candidates
        assert result.matches == reference.matches

    def test_n_jobs_invariance(self, problem, reference):
        for config in (ParallelConfig(n_jobs=4), ParallelConfig(n_jobs=2, backend="thread")):
            linker = CompactHammingLinker.record_level(
                threshold=4, k=30, seed=7, parallel=config
            )
            self._assert_identical(
                linker.link(problem.dataset_a, problem.dataset_b), reference
            )

    def test_chunked_invariance(self, problem, reference):
        for budget in (37, 512):
            linker = CompactHammingLinker.record_level(
                threshold=4, k=30, seed=7, max_chunk_pairs=budget
            )
            self._assert_identical(
                linker.link(problem.dataset_a, problem.dataset_b), reference
            )

    def test_chunked_parallel_invariance(self, problem, reference):
        linker = CompactHammingLinker.record_level(
            threshold=4,
            k=30,
            seed=7,
            parallel=ParallelConfig(n_jobs=4),
            max_chunk_pairs=64,
        )
        self._assert_identical(
            linker.link(problem.dataset_a, problem.dataset_b), reference
        )

    def test_counters_populated(self, problem):
        linker = CompactHammingLinker.record_level(
            threshold=4, k=30, seed=7, max_chunk_pairs=128
        )
        result = linker.link(problem.dataset_a, problem.dataset_b)
        for key in (
            "intern_hit_rate",
            "pairs_generated",
            "pairs_unique",
            "pairs_verified",
            "peak_chunk_pairs",
        ):
            assert key in result.counters
        assert result.counters["pairs_verified"] == result.n_candidates


class TestStreamingBatchedQuery:
    def test_query_matches_per_id_reference(self):
        rows = NCVRGenerator().generate(120, seed=11).value_rows()
        encoder = RecordEncoder.calibrated(rows, scheme=EXPERIMENT_SCHEME, seed=11)
        streaming = StreamingLinker(encoder, threshold=4, k=30, seed=11)
        for values in rows[:80]:
            streaming.insert(values)
        for values in rows[40:]:
            got = streaming.query(values)
            vector = encoder.encode(values)
            expected = []
            for rid in streaming._lsh.query(vector):
                distance = streaming.vector(rid).hamming(vector)
                if distance <= streaming.threshold:
                    expected.append((rid, distance))
            assert got == expected

    def test_growable_store_roundtrips_vectors(self):
        rows = NCVRGenerator().generate(40, seed=5).value_rows()
        encoder = RecordEncoder.calibrated(rows, scheme=EXPERIMENT_SCHEME, seed=5)
        streaming = StreamingLinker(encoder, threshold=4, k=30, seed=5)
        for values in rows:
            streaming.insert(values)
        assert len(streaming) == len(rows)
        for i, values in enumerate(rows):
            assert streaming.vector(i) == encoder.encode(values)
        with pytest.raises(IndexError):
            streaming.vector(len(rows))


class TestLogHistogram:
    def test_count_mean_and_sum_are_exact(self):
        hist = LogHistogram.latency()
        values = [0.001, 0.002, 0.004, 0.050]
        for value in values:
            hist.record(value)
        assert hist.count == len(values)
        assert hist.total == pytest.approx(sum(values))
        assert hist.mean == pytest.approx(sum(values) / len(values))

    def test_percentile_is_conservative_within_one_bucket(self):
        """The reported quantile is the bucket's upper edge: at or above
        the true value, and within one geometric bucket width of it."""
        hist = LogHistogram.latency()
        width = 10.0 ** (1.0 / hist.buckets_per_decade)
        for value in (0.001, 0.002, 0.003, 0.010, 0.200):
            hist.record(value)
            reported = hist.percentile(1.0)
            assert value <= reported <= value * width

    def test_percentiles_are_monotonic(self):
        rng = np.random.default_rng(3)
        hist = LogHistogram.latency()
        for value in rng.lognormal(mean=-6.0, sigma=1.5, size=500):
            hist.record(float(value))
        quantiles = [hist.percentile(q) for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0)]
        assert quantiles == sorted(quantiles)

    def test_underflow_and_overflow_clamp_to_grid_edges(self):
        hist = LogHistogram(lo=1e-3, hi=1e2)
        hist.record(1e-9)
        hist.record(1e9)
        assert hist.percentile(0.25) == hist.lo
        assert hist.percentile(1.0) == hist.hi
        assert hist.count == 2

    def test_merge_equals_recording_into_one(self):
        left, right, both = (LogHistogram.sizes() for __ in range(3))
        for value in (1, 4, 16, 64):
            left.record(value)
            both.record(value)
        for value in (2, 256, 4096):
            right.record(value)
            both.record(value)
        left.merge(right)
        assert left.counts == both.counts
        assert left.count == both.count
        assert left.total == pytest.approx(both.total)
        for q in (0.5, 0.95, 0.99):
            assert left.percentile(q) == both.percentile(q)

    def test_merge_rejects_different_grids(self):
        with pytest.raises(ValueError):
            LogHistogram.latency().merge(LogHistogram.sizes())

    def test_snapshot_roundtrips_the_distribution(self):
        hist = LogHistogram.sizes()
        for value in (1, 1, 8, 8, 8, 500):
            hist.record(value)
        snap = hist.snapshot()
        assert snap["count"] == 6
        assert snap["sum"] == pytest.approx(526.0)
        assert sum(snap["buckets"].values()) == snap["count"]
        assert all(n > 0 for n in snap["buckets"].values())  # sparse
        json.dumps(snap)

    def test_empty_histogram(self):
        hist = LogHistogram.latency()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.99) == 0.0
        assert hist.snapshot()["buckets"] == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            LogHistogram(lo=0.0, hi=1.0)
        with pytest.raises(ValueError):
            LogHistogram(lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            LogHistogram(lo=1.0, hi=10.0, buckets_per_decade=0)
        with pytest.raises(ValueError):
            LogHistogram.latency().percentile(1.5)
