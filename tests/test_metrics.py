"""Tests for repro.evaluation.metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    evaluate_linkage,
    pairs_completeness,
    pairs_from_arrays,
    pairs_quality,
    reduction_ratio,
    subset_completeness,
)

PAIRS = st.sets(
    st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=30
)


class TestPairsCompleteness:
    def test_definition(self):
        truth = {(0, 0), (1, 1), (2, 2), (3, 3)}
        found = {(0, 0), (1, 1), (9, 9)}
        assert pairs_completeness(found, truth) == pytest.approx(0.5)

    def test_empty_truth_is_complete(self):
        assert pairs_completeness({(1, 1)}, set()) == 1.0

    @given(PAIRS, PAIRS)
    def test_range(self, found, truth):
        assert 0.0 <= pairs_completeness(found, truth) <= 1.0

    @given(PAIRS)
    def test_perfect_when_found_superset(self, truth):
        assert pairs_completeness(truth | {(99, 99)}, truth) == 1.0


class TestPairsQuality:
    def test_definition(self):
        truth = {(0, 0), (1, 1)}
        found = {(0, 0), (5, 5)}
        assert pairs_quality(found, truth, n_candidates=10) == pytest.approx(0.1)

    def test_zero_candidates(self):
        assert pairs_quality({(0, 0)}, {(0, 0)}, 0) == 0.0


class TestReductionRatio:
    def test_definition(self):
        assert reduction_ratio(100, 10_000) == pytest.approx(0.99)

    def test_no_reduction(self):
        assert reduction_ratio(10_000, 10_000) == 0.0

    def test_invalid_space(self):
        with pytest.raises(ValueError):
            reduction_ratio(1, 0)


class TestEvaluateLinkage:
    def test_full_bundle(self):
        truth = {(0, 0), (1, 1), (2, 2)}
        matches = [(0, 0), (1, 1), (7, 7)]
        quality = evaluate_linkage(matches, truth, n_candidates=6, comparison_space=100)
        assert quality.pairs_completeness == pytest.approx(2 / 3)
        assert quality.pairs_quality == pytest.approx(2 / 6)
        assert quality.reduction_ratio == pytest.approx(0.94)
        assert quality.precision == pytest.approx(2 / 3)
        assert quality.recall == pytest.approx(2 / 3)
        assert quality.f1 == pytest.approx(2 / 3)
        assert quality.n_true_positives == 2

    def test_no_matches(self):
        quality = evaluate_linkage([], {(0, 0)}, 5, 100)
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_as_dict_keys(self):
        quality = evaluate_linkage([(0, 0)], {(0, 0)}, 1, 4)
        assert {"PC", "PQ", "RR", "precision", "recall", "F1"} <= set(quality.as_dict())

    @given(PAIRS, PAIRS)
    def test_recall_equals_pc(self, found, truth):
        """PC and recall coincide when matches are the classified pairs."""
        n_cand = len(found) + 5
        quality = evaluate_linkage(found, truth, n_cand, 10_000)
        assert quality.recall == pytest.approx(quality.pairs_completeness)


class TestHelpers:
    def test_pairs_from_arrays(self):
        pairs = pairs_from_arrays(np.asarray([1, 2]), np.asarray([3, 4]))
        assert pairs == {(1, 3), (2, 4)}

    def test_subset_completeness(self):
        found = {(0, 0), (1, 1)}
        assert subset_completeness(found, {(1, 1), (2, 2)}) == pytest.approx(0.5)
