"""Tests for repro.data.corpora and repro.data.generators."""

import pytest

from repro.data.corpora import (
    FIRST_NAMES,
    LAST_NAMES,
    STREET_NAMES,
    TITLE_WORDS,
    TOWNS,
    length_tilt,
)
from repro.data.generators import (
    DBLPGenerator,
    NCVRGenerator,
    average_qgram_counts,
)
from repro.text.alphabet import TEXT_ALPHABET


class TestCorpora:
    @pytest.mark.parametrize(
        "corpus", [FIRST_NAMES, LAST_NAMES, STREET_NAMES, TOWNS, TITLE_WORDS]
    )
    def test_unique_and_normalised(self, corpus):
        assert len(set(corpus)) == len(corpus)
        for word in corpus:
            assert word == word.upper()
            assert all(ch in TEXT_ALPHABET for ch in word)

    def test_length_tilt_hits_target(self):
        weights = length_tilt(FIRST_NAMES, 6.1)
        mean = sum(w * len(word) for w, word in zip(weights, FIRST_NAMES))
        assert mean == pytest.approx(6.1, abs=0.01)
        assert sum(weights) == pytest.approx(1.0)

    def test_length_tilt_unattainable_target(self):
        with pytest.raises(ValueError):
            length_tilt(FIRST_NAMES, 100.0)


class TestNCVRGenerator:
    def test_deterministic_under_seed(self):
        g = NCVRGenerator()
        d1 = g.generate(50, seed=5)
        d2 = g.generate(50, seed=5)
        assert d1.value_rows() == d2.value_rows()

    def test_different_seeds_differ(self):
        g = NCVRGenerator()
        assert g.generate(50, seed=1).value_rows() != g.generate(50, seed=2).value_rows()

    def test_schema_attributes(self):
        ds = NCVRGenerator().generate(10, seed=0)
        assert ds.schema.names == ("FirstName", "LastName", "Address", "Town")

    def test_bigram_counts_near_table3(self):
        """Measured b^(f_i) within 10% of the paper's Table 3 values."""
        ds = NCVRGenerator().generate(3000, seed=7)
        b = average_qgram_counts(ds)
        assert b["FirstName"] == pytest.approx(5.1, rel=0.1)
        assert b["LastName"] == pytest.approx(5.0, rel=0.1)
        assert b["Address"] == pytest.approx(20.0, rel=0.1)
        assert b["Town"] == pytest.approx(7.2, rel=0.1)

    def test_values_in_experiment_alphabet(self):
        ds = NCVRGenerator().generate(100, seed=3)
        for record in ds:
            for value in record.values:
                assert all(ch in TEXT_ALPHABET for ch in value)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            NCVRGenerator().generate(0)


class TestDBLPGenerator:
    def test_schema_attributes(self):
        ds = DBLPGenerator().generate(10, seed=0)
        assert ds.schema.names == ("FirstName", "LastName", "Title", "Year")

    def test_bigram_counts_near_table3(self):
        ds = DBLPGenerator().generate(3000, seed=7)
        b = average_qgram_counts(ds)
        assert b["FirstName"] == pytest.approx(4.8, rel=0.1)
        assert b["LastName"] == pytest.approx(6.2, rel=0.1)
        assert b["Title"] == pytest.approx(64.8, rel=0.1)
        assert b["Year"] == pytest.approx(3.0, abs=0.01)

    def test_year_is_four_digits(self):
        ds = DBLPGenerator().generate(100, seed=1)
        for year in ds.column("Year"):
            assert len(year) == 4 and year.isdigit()
            assert 1970 <= int(year) <= 2015

    def test_titles_are_multiword(self):
        ds = DBLPGenerator().generate(50, seed=2)
        assert all(" " in title for title in ds.column("Title"))
