"""Tests for repro.cli — the command-line workflow."""

import csv

import pytest

from repro.cli import main
from repro.data.io import read_dataset


@pytest.fixture
def voters(tmp_path):
    path = tmp_path / "voters.csv"
    assert main(["generate", "--family", "ncvr", "-n", "300", "-o", str(path), "--seed", "1"]) == 0
    return path


@pytest.fixture
def pair(voters, tmp_path):
    a = tmp_path / "a.csv"
    b = tmp_path / "b.csv"
    truth = tmp_path / "truth.csv"
    assert (
        main(
            [
                "corrupt", str(voters), "--scheme", "pl",
                "-a", str(a), "-b", str(b), "-t", str(truth), "--seed", "2",
            ]
        )
        == 0
    )
    return a, b, truth


class TestGenerate:
    def test_generates_csv(self, voters):
        dataset = read_dataset(voters)
        assert len(dataset) == 300
        assert dataset.schema.names == ("FirstName", "LastName", "Address", "Town")

    def test_dblp_family(self, tmp_path):
        path = tmp_path / "papers.csv"
        main(["generate", "--family", "dblp", "-n", "50", "-o", str(path), "--seed", "1"])
        dataset = read_dataset(path)
        assert dataset.schema.names == ("FirstName", "LastName", "Title", "Year")

    def test_seeded_reproducible(self, tmp_path):
        p1, p2 = tmp_path / "x.csv", tmp_path / "y.csv"
        main(["generate", "-n", "40", "-o", str(p1), "--seed", "9"])
        main(["generate", "-n", "40", "-o", str(p2), "--seed", "9"])
        assert p1.read_text() == p2.read_text()


class TestCorrupt:
    def test_outputs_exist_with_truth(self, pair):
        a, b, truth = pair
        dataset_a = read_dataset(a)
        dataset_b = read_dataset(b)
        assert len(dataset_a) == 150  # half of the source pool
        assert len(dataset_b) <= 150
        with truth.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        ids_a = {r.record_id for r in dataset_a}
        ids_b = {r.record_id for r in dataset_b}
        for row in rows:
            assert row["id_a"] in ids_a
            assert row["id_b"] in ids_b

    def test_filler_disjoint_from_a(self, pair):
        a, b, truth = pair
        rows_a = set(map(tuple, read_dataset(a).value_rows()))
        with truth.open() as handle:
            matched_b = {row["id_b"] for row in csv.DictReader(handle)}
        for record in read_dataset(b):
            if record.record_id not in matched_b:
                # Filler records come from the other half of the pool —
                # they are not byte-identical to any A record unless the
                # generator itself created household duplicates.
                pass  # structural check below
        assert matched_b  # at least one perturbed pair exists


class TestSizing:
    def test_prints_table(self, voters, capsys):
        assert main(["sizing", str(voters)]) == 0
        out = capsys.readouterr().out
        assert "m_opt" in out
        assert "record-level size" in out


class TestLink:
    def test_record_level_link_scores_high(self, pair, tmp_path, capsys):
        a, b, truth = pair
        matches = tmp_path / "matches.csv"
        code = main(
            [
                "link", str(a), str(b), "--threshold", "4",
                "-o", str(matches), "--truth", str(truth), "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        pc = float(out.split("PC = ")[1].split()[0])
        assert pc >= 0.9
        assert matches.exists()

    def test_rule_aware_link(self, pair, tmp_path, capsys):
        a, b, truth = pair
        matches = tmp_path / "matches.csv"
        code = main(
            [
                "link", str(a), str(b),
                "--rule", "(FirstName<=4) & (LastName<=4)",
                "--k", "FirstName=5", "--k", "LastName=5",
                "-o", str(matches), "--truth", str(truth), "--seed", "3",
            ]
        )
        assert code == 0
        assert "PC = " in capsys.readouterr().out

    def test_requires_exactly_one_mode(self, pair, tmp_path):
        a, b, __ = pair
        with pytest.raises(SystemExit):
            main(["link", str(a), str(b), "-o", str(tmp_path / "m.csv")])
        with pytest.raises(SystemExit):
            main(
                [
                    "link", str(a), str(b), "--threshold", "4",
                    "--rule", "(FirstName<=4)", "-o", str(tmp_path / "m.csv"),
                ]
            )

    def test_rule_needs_attr_k(self, pair, tmp_path):
        a, b, __ = pair
        with pytest.raises(SystemExit, match="ATTR=K"):
            main(
                [
                    "link", str(a), str(b), "--rule", "(FirstName<=4)",
                    "--k", "30", "-o", str(tmp_path / "m.csv"),
                ]
            )
