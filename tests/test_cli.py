"""Tests for repro.cli — the command-line workflow."""

import csv

import pytest

from repro.cli import main
from repro.data.io import read_dataset


@pytest.fixture
def voters(tmp_path):
    path = tmp_path / "voters.csv"
    assert main(["generate", "--family", "ncvr", "-n", "300", "-o", str(path), "--seed", "1"]) == 0
    return path


@pytest.fixture
def pair(voters, tmp_path):
    a = tmp_path / "a.csv"
    b = tmp_path / "b.csv"
    truth = tmp_path / "truth.csv"
    assert (
        main(
            [
                "corrupt", str(voters), "--scheme", "pl",
                "-a", str(a), "-b", str(b), "-t", str(truth), "--seed", "2",
            ]
        )
        == 0
    )
    return a, b, truth


class TestGenerate:
    def test_generates_csv(self, voters):
        dataset = read_dataset(voters)
        assert len(dataset) == 300
        assert dataset.schema.names == ("FirstName", "LastName", "Address", "Town")

    def test_dblp_family(self, tmp_path):
        path = tmp_path / "papers.csv"
        main(["generate", "--family", "dblp", "-n", "50", "-o", str(path), "--seed", "1"])
        dataset = read_dataset(path)
        assert dataset.schema.names == ("FirstName", "LastName", "Title", "Year")

    def test_seeded_reproducible(self, tmp_path):
        p1, p2 = tmp_path / "x.csv", tmp_path / "y.csv"
        main(["generate", "-n", "40", "-o", str(p1), "--seed", "9"])
        main(["generate", "-n", "40", "-o", str(p2), "--seed", "9"])
        assert p1.read_text() == p2.read_text()


class TestCorrupt:
    def test_outputs_exist_with_truth(self, pair):
        a, b, truth = pair
        dataset_a = read_dataset(a)
        dataset_b = read_dataset(b)
        assert len(dataset_a) == 150  # half of the source pool
        assert len(dataset_b) <= 150
        with truth.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        ids_a = {r.record_id for r in dataset_a}
        ids_b = {r.record_id for r in dataset_b}
        for row in rows:
            assert row["id_a"] in ids_a
            assert row["id_b"] in ids_b

    def test_filler_disjoint_from_a(self, pair):
        a, b, truth = pair
        rows_a = set(map(tuple, read_dataset(a).value_rows()))
        with truth.open() as handle:
            matched_b = {row["id_b"] for row in csv.DictReader(handle)}
        for record in read_dataset(b):
            if record.record_id not in matched_b:
                # Filler records come from the other half of the pool —
                # they are not byte-identical to any A record unless the
                # generator itself created household duplicates.
                pass  # structural check below
        assert matched_b  # at least one perturbed pair exists


class TestSizing:
    def test_prints_table(self, voters, capsys):
        assert main(["sizing", str(voters)]) == 0
        out = capsys.readouterr().out
        assert "m_opt" in out
        assert "record-level size" in out


class TestLink:
    def test_record_level_link_scores_high(self, pair, tmp_path, capsys):
        a, b, truth = pair
        matches = tmp_path / "matches.csv"
        code = main(
            [
                "link", str(a), str(b), "--threshold", "4",
                "-o", str(matches), "--truth", str(truth), "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        pc = float(out.split("PC = ")[1].split()[0])
        assert pc >= 0.9
        assert matches.exists()

    def test_rule_aware_link(self, pair, tmp_path, capsys):
        a, b, truth = pair
        matches = tmp_path / "matches.csv"
        code = main(
            [
                "link", str(a), str(b),
                "--rule", "(FirstName<=4) & (LastName<=4)",
                "--k", "FirstName=5", "--k", "LastName=5",
                "-o", str(matches), "--truth", str(truth), "--seed", "3",
            ]
        )
        assert code == 0
        assert "PC = " in capsys.readouterr().out

    def test_requires_exactly_one_mode(self, pair, tmp_path):
        a, b, __ = pair
        with pytest.raises(SystemExit):
            main(["link", str(a), str(b), "-o", str(tmp_path / "m.csv")])
        with pytest.raises(SystemExit):
            main(
                [
                    "link", str(a), str(b), "--threshold", "4",
                    "--rule", "(FirstName<=4)", "-o", str(tmp_path / "m.csv"),
                ]
            )

    def test_rule_needs_attr_k(self, pair, tmp_path):
        a, b, __ = pair
        with pytest.raises(SystemExit, match="ATTR=K"):
            main(
                [
                    "link", str(a), str(b), "--rule", "(FirstName<=4)",
                    "--k", "30", "-o", str(tmp_path / "m.csv"),
                ]
            )


class TestServe:
    @staticmethod
    def _free_port():
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    @staticmethod
    def _get(port, path):
        import json
        import urllib.request

        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as r:
            return json.loads(r.read())

    @staticmethod
    def _post(port, path, payload):
        import json
        import urllib.request

        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=5) as r:
            return json.loads(r.read())

    def test_serve_bundle_answers_and_exits_at_limit(
        self, voters, tmp_path, capsys
    ):
        import threading
        import time

        bundle = tmp_path / "idx"
        assert (
            main(
                [
                    "index", "build", str(voters),
                    "--threshold", "4", "--seed", "7", "-o", str(bundle),
                ]
            )
            == 0
        )
        row = list(map(str, next(iter(read_dataset(voters).value_rows()))))

        port = self._free_port()
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(
                main(
                    [
                        "serve", str(bundle),
                        "--port", str(port), "--limit-requests", "3",
                    ]
                )
            )
        )
        thread.start()
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    health = self._get(port, "/healthz")
                    break
                except OSError:
                    time.sleep(0.05)
            else:
                raise AssertionError("server never came up")
            assert health["ok"] is True and health["n_indexed"] == 300
            answer = self._post(port, "/query", {"row": row})
            assert [0, 0] in answer["matches"]  # the record matches itself
            stats = self._get(port, "/stats")  # third request: hits the limit
            assert stats["counters"]["n_completed"] == 1.0
        finally:
            thread.join(timeout=10)
        assert not thread.is_alive()
        assert codes == [0]
        out = capsys.readouterr().out
        assert "serving 300 records" in out
        assert "served 1 requests" in out

    def test_serve_csv_needs_threshold(self, voters):
        with pytest.raises(SystemExit, match="--threshold"):
            main(["serve", str(voters), "--port", "0"])
