"""Tests for repro.rules.probability — Definitions 4-6 and the paper's L values."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rules.ast import And, Comparison, Not, Or, RuleError
from repro.rules.parser import parse_rule
from repro.rules.probability import (
    AttributeParams,
    attribute_success_probability,
    comparison_collision_probability,
    rule_collision_probability,
    rule_table_count,
)

NCVR = {
    "f1": AttributeParams(15, 5),
    "f2": AttributeParams(15, 5),
    "f3": AttributeParams(68, 10),
}
DBLP = {
    "f1": AttributeParams(14, 5),
    "f2": AttributeParams(19, 5),
    "f3": AttributeParams(226, 12),
}
C1 = parse_rule("(f1<=4) & (f2<=4) & (f3<=8)")


class TestAttributeSuccess:
    def test_definition(self):
        assert attribute_success_probability(4, 15) == pytest.approx(1 - 4 / 15)

    def test_invalid(self):
        with pytest.raises(RuleError):
            attribute_success_probability(16, 15)
        with pytest.raises(RuleError):
            attribute_success_probability(1, 0)

    def test_params_validation(self):
        with pytest.raises(RuleError):
            AttributeParams(0, 5)
        with pytest.raises(RuleError):
            AttributeParams(5, 0)


class TestDefinition4And:
    def test_product_bound(self):
        prob = rule_collision_probability(C1, NCVR)
        expected = (
            attribute_success_probability(4, 15) ** 5
        ) ** 2 * attribute_success_probability(8, 68) ** 10
        assert prob == pytest.approx(expected)

    def test_paper_l_178_ncvr(self):
        assert rule_table_count(C1, NCVR, delta=0.1) == 178

    def test_paper_l_62_dblp(self):
        assert rule_table_count(C1, DBLP, delta=0.1) == 62


class TestDefinition5Or:
    def test_two_arm_inclusion_exclusion(self):
        rule = parse_rule("(f1<=4) | (f2<=4)")
        p1 = comparison_collision_probability(Comparison("f1", 4), NCVR)
        p2 = comparison_collision_probability(Comparison("f2", 4), NCVR)
        expected = p1 + p2 - p1 * p2  # Equation (11)
        assert rule_collision_probability(rule, NCVR) == pytest.approx(expected)

    def test_three_arm_inclusion_exclusion(self):
        rule = parse_rule("(f1<=4) | (f2<=4) | (f3<=8)")
        ps = [
            comparison_collision_probability(Comparison(a, t), NCVR)
            for a, t in (("f1", 4), ("f2", 4), ("f3", 8))
        ]
        miss = 1.0
        for p in ps:
            miss *= 1 - p
        assert rule_collision_probability(rule, NCVR) == pytest.approx(1 - miss)

    def test_or_needs_fewer_tables_than_and(self):
        and_rule = parse_rule("(f1<=4) & (f2<=4)")
        or_rule = parse_rule("(f1<=4) | (f2<=4)")
        assert rule_table_count(or_rule, NCVR) < rule_table_count(and_rule, NCVR)


class TestDefinition6Not:
    def test_complement(self):
        rule = Not(Comparison("f2", 4))
        p2 = comparison_collision_probability(Comparison("f2", 4), NCVR)
        assert rule_collision_probability(rule, NCVR) == pytest.approx(1 - p2)

    def test_c3_combines_and_with_not(self):
        c3 = parse_rule("(f1<=4) & !(f2<=4)")
        p1 = comparison_collision_probability(Comparison("f1", 4), NCVR)
        p2 = comparison_collision_probability(Comparison("f2", 4), NCVR)
        assert rule_collision_probability(c3, NCVR) == pytest.approx(p1 * (1 - p2))


class TestGeneralProperties:
    def test_missing_params_raise(self):
        with pytest.raises(RuleError, match="no blocking parameters"):
            rule_collision_probability(Comparison("f9", 1), NCVR)

    @given(
        st.integers(0, 10),
        st.integers(0, 10),
        st.integers(1, 8),
        st.integers(1, 8),
    )
    def test_probabilities_stay_in_unit_interval(self, t1, t2, k1, k2):
        params = {"f1": AttributeParams(12, k1), "f2": AttributeParams(12, k2)}
        for rule in (
            And([Comparison("f1", t1), Comparison("f2", t2)]),
            Or([Comparison("f1", t1), Comparison("f2", t2)]),
            Not(Comparison("f1", t1)),
        ):
            prob = rule_collision_probability(rule, params)
            assert 0.0 <= prob <= 1.0

    @given(st.integers(0, 10), st.integers(0, 10))
    def test_and_below_or(self, t1, t2):
        params = {"f1": AttributeParams(12, 3), "f2": AttributeParams(12, 3)}
        and_p = rule_collision_probability(
            And([Comparison("f1", t1), Comparison("f2", t2)]), params
        )
        or_p = rule_collision_probability(
            Or([Comparison("f1", t1), Comparison("f2", t2)]), params
        )
        assert and_p <= or_p + 1e-12
