"""Tests for sharded bundles (repro.core.shards) and scatter-gather serving.

Four contracts:

* **Parity** — ``ShardedQueryEngine`` returns byte-identical threshold
  and top-k results to the single-shard ``QueryEngine`` for every
  ``n_shards``, in memory, from a persisted bundle, and under process
  fan-out; the merged global view serves the committed golden matches.
* **Durability** — an acknowledged ``ingest`` survives any crash: WAL
  replay on open restores exactly the acknowledged records, torn tails
  (kill between append and fsync) replay to the durable prefix, and
  compaction folds the log into new shard snapshots without changing a
  single result.
* **Atomicity** — a killed save never leaves a half-written bundle; a
  killed compaction leaves the previous generation authoritative.
* **Loud failure** — stale manifests, swapped encoders and corrupt
  sidecars raise :class:`SnapshotError`, never serve wrong candidates.
"""

import json

import numpy as np
import pytest

from repro.core.encoder import RecordEncoder
from repro.core.linker import CompactHammingLinker, StreamingLinker
from repro.core.persist import (
    SnapshotError,
    load_index_snapshot,
    write_dir_atomic,
)
from repro.core.shards import (
    ShardedIndex,
    _wal_payload,
    is_sharded_bundle,
    shard_of_id,
    shards_of_ids,
    wal_name,
)
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.data.generators import EXPERIMENT_SCHEME
from repro.data.io import write_dataset
from repro.hamming.sketch import VerifyConfig
from repro.perf import ParallelConfig
from repro.pipeline import (
    ChunkedCandidateStage,
    LoadSnapshotStage,
    QueryEmbedStage,
    ThresholdVerifyStage,
)
from repro.pipeline.runner import LinkagePipeline
from repro.serve import QueryEngine, ShardedQueryEngine
from repro.wal import frame, replay_segment
from tests.golden_linkers import (
    GOLDEN_PATH,
    K,
    PROBLEM_SEED,
    THRESHOLD,
    make_problem,
)

SEED = 11
N = 150


@pytest.fixture(scope="module")
def problem():
    return build_linkage_problem(NCVRGenerator(), N, scheme_pl(), seed=SEED)


@pytest.fixture(scope="module")
def encoder(problem):
    rows = list(problem.dataset_a.value_rows()) + list(problem.dataset_b.value_rows())
    return RecordEncoder.calibrated(rows, scheme=EXPERIMENT_SCHEME, seed=SEED)


@pytest.fixture(scope="module")
def rows_a(problem):
    return [tuple(r) for r in problem.dataset_a.value_rows()]


@pytest.fixture(scope="module")
def rows_b(problem):
    return [tuple(r) for r in problem.dataset_b.value_rows()]


@pytest.fixture(scope="module")
def reference(encoder, rows_a):
    return QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)


def _arrays(result):
    return result.queries, result.ids, result.distances


def _assert_identical(left, right):
    assert left.n_queries == right.n_queries
    for a, b in zip(_arrays(left), _arrays(right)):
        assert np.array_equal(a, b)


class TestShardAssignment:
    def test_scalar_and_vector_agree(self):
        ids = np.arange(500)
        for n_shards in (1, 2, 3, 8):
            vectorised = shards_of_ids(ids, n_shards)
            assert all(
                shard_of_id(int(i), n_shards) == vectorised[i] for i in ids
            )

    def test_assignment_is_spread_and_stable(self):
        counts = np.bincount(shards_of_ids(np.arange(2000), 8), minlength=8)
        assert counts.min() > 0
        assert shards_of_ids(np.arange(100), 8).tolist() == shards_of_ids(
            np.arange(100), 8
        ).tolist()

    def test_single_shard_owns_everything(self):
        assert shards_of_ids(np.arange(50), 1).tolist() == [0] * 50
        assert shard_of_id(123, 1) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_of_id(0, 0)
        with pytest.raises(ValueError, match="n_shards"):
            shards_of_ids(np.arange(3), 0)
        with pytest.raises(ValueError, match="record_id"):
            shard_of_id(-1, 4)


class TestShardedParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_in_memory_parity(self, reference, encoder, rows_a, rows_b, n_shards):
        sharded = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=n_shards, threshold=4, k=30, seed=SEED
        )
        _assert_identical(reference.query_batch(rows_b), sharded.query_batch(rows_b))
        _assert_identical(
            reference.query_batch(rows_b, top_k=2),
            sharded.query_batch(rows_b, top_k=2),
        )

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_persisted_and_parallel_parity(
        self, tmp_path, reference, encoder, rows_a, rows_b, n_shards
    ):
        sharded = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=n_shards, threshold=4, k=30, seed=SEED
        )
        bundle = sharded.save(tmp_path / "idx")
        _assert_identical(reference.query_batch(rows_b), sharded.query_batch(rows_b))
        parallel = ShardedQueryEngine.from_bundle(
            bundle, parallel=ParallelConfig(n_jobs=2, backend="process")
        )
        _assert_identical(reference.query_batch(rows_b), parallel.query_batch(rows_b))
        _assert_identical(
            reference.query_batch(rows_b, top_k=3),
            parallel.query_batch(rows_b, top_k=3),
        )

    def test_prefilter_parity(self, reference, encoder, rows_a, rows_b):
        verify = VerifyConfig(tiers=(1,), block_rows=64)
        sharded = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=3, threshold=4, k=30, seed=SEED, verify=verify
        )
        _assert_identical(reference.query_batch(rows_b), sharded.query_batch(rows_b))
        assert sharded.stats["pairs_prefiltered"] > 0
        assert 0.0 <= sharded.stats["prefilter_reject_rate"] <= 1.0

    def test_thread_backend_parity(self, reference, encoder, rows_a, rows_b):
        sharded = ShardedQueryEngine.build(
            rows_a,
            encoder,
            n_shards=4,
            threshold=4,
            k=30,
            seed=SEED,
            parallel=ParallelConfig(n_jobs=2, backend="thread"),
        )
        _assert_identical(reference.query_batch(rows_b), sharded.query_batch(rows_b))

    def test_empty_batch_and_threshold_override(self, encoder, rows_a, rows_b):
        sharded = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=2, threshold=4, k=30, seed=SEED
        )
        assert sharded.query_batch([]).n_queries == 0
        strict = sharded.query_batch(rows_b, threshold=0)
        assert strict.n_matches <= sharded.query_batch(rows_b).n_matches

    def test_serves_golden_streaming_matches(self):
        golden = json.loads(GOLDEN_PATH.read_text())["streaming"]
        prob = make_problem()
        calibrator = CompactHammingLinker.record_level(
            threshold=THRESHOLD, k=K, seed=PROBLEM_SEED
        )
        enc = calibrator.calibrate(prob.dataset_a, prob.dataset_b)
        sharded = ShardedQueryEngine.build(
            [tuple(r) for r in prob.dataset_a.value_rows()],
            enc,
            n_shards=3,
            threshold=THRESHOLD,
            k=K,
            seed=PROBLEM_SEED,
        )
        result = sharded.query_batch([tuple(r) for r in prob.dataset_b.value_rows()])
        matches = sorted(
            [int(a), int(b)] for b, a in zip(result.queries, result.ids)
        )
        assert matches == golden["matches"]
        assert len(matches) == golden["n_matches"]


class TestDurableIngest:
    def test_acknowledged_records_survive_reopen(
        self, tmp_path, encoder, rows_a, rows_b
    ):
        """ingest -> crash (drop the object) -> open replays the WAL."""
        engine = ShardedQueryEngine.build(
            rows_a[:-5], encoder, n_shards=3, threshold=4, k=30, seed=SEED
        )
        bundle = engine.save(tmp_path / "idx")
        gids = engine.ingest(rows_a[-5:])
        assert gids == list(range(len(rows_a) - 5, len(rows_a)))
        engine.close()  # nothing flushed beyond what ingest already fsync'd

        reopened = ShardedQueryEngine.from_bundle(bundle)
        assert reopened.n_indexed == len(rows_a)
        assert reopened.index.counters["wal_replayed_records"] == 5.0
        rebuilt = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        _assert_identical(rebuilt.query_batch(rows_b), reopened.query_batch(rows_b))
        _assert_identical(
            rebuilt.query_batch(rows_b, top_k=2),
            reopened.query_batch(rows_b, top_k=2),
        )

    def test_compaction_folds_wal_and_preserves_results(
        self, tmp_path, encoder, rows_a, rows_b
    ):
        engine = ShardedQueryEngine.build(
            rows_a[:-5], encoder, n_shards=3, threshold=4, k=30, seed=SEED
        )
        bundle = engine.save(tmp_path / "idx")
        engine.ingest(rows_a[-5:])
        before = engine.query_batch(rows_b)
        assert engine.index.overlay_rows == 5
        version = engine.compact()
        assert version == 2
        assert engine.index.overlay_rows == 0
        _assert_identical(before, engine.query_batch(rows_b))
        # the WAL is gone; a fresh open replays nothing and still agrees
        reopened = ShardedQueryEngine.from_bundle(bundle)
        assert reopened.index.counters["wal_replayed_records"] == 0.0
        assert reopened.index.version == 2
        _assert_identical(before, reopened.query_batch(rows_b))

    def test_ingest_on_in_memory_engine_skips_wal(self, encoder, rows_a, rows_b):
        engine = ShardedQueryEngine.build(
            rows_a[:-3], encoder, n_shards=2, threshold=4, k=30, seed=SEED
        )
        engine.ingest(rows_a[-3:])
        rebuilt = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        _assert_identical(rebuilt.query_batch(rows_b), engine.query_batch(rows_b))

    def test_parallel_serving_sees_acknowledged_ingest(
        self, tmp_path, encoder, rows_a, rows_b
    ):
        """Pool workers attach via the bundle path and replay the WAL."""
        engine = ShardedQueryEngine.from_bundle(
            ShardedQueryEngine.build(
                rows_a[:-5], encoder, n_shards=2, threshold=4, k=30, seed=SEED
            ).save(tmp_path / "idx"),
            parallel=ParallelConfig(n_jobs=2, backend="process"),
        )
        engine.ingest(rows_a[-5:])
        rebuilt = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        _assert_identical(rebuilt.query_batch(rows_b), engine.query_batch(rows_b))


class TestCrashRecovery:
    def test_torn_wal_tail_replays_to_durable_prefix(
        self, tmp_path, encoder, rows_a
    ):
        """Kill between append and fsync: replay stops at the last durable record."""
        engine = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=2, threshold=4, k=30, seed=SEED
        )
        bundle = engine.save(tmp_path / "idx")
        index = engine.index
        durable_gid = index.next_id
        shard = shard_of_id(durable_gid, 2)
        torn_gid = next(
            gid for gid in range(durable_gid + 1, durable_gid + 50)
            if shard_of_id(gid, 2) == shard
        )
        segment = bundle / wal_name(shard)
        with open(segment, "ab") as handle:
            handle.write(frame(_wal_payload(durable_gid, rows_a[0])))
            handle.write(frame(_wal_payload(torn_gid, rows_a[1]))[:-4])

        with ShardedIndex.open(bundle) as reopened:
            assert reopened.n_rows == len(rows_a) + 1  # durable record only
            assert reopened.counters["wal_replayed_records"] == 1.0
            assert reopened.counters["wal_torn_bytes"] > 0
        # the torn tail was truncated away: the next open is clean
        assert replay_segment(segment).clean
        with ShardedIndex.open(bundle) as again:
            assert again.counters["wal_torn_bytes"] == 0.0
            assert again.n_rows == len(rows_a) + 1

    def test_crc_corrupt_wal_record_is_not_replayed(self, tmp_path, encoder, rows_a):
        engine = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=2, threshold=4, k=30, seed=SEED
        )
        bundle = engine.save(tmp_path / "idx")
        gid = engine.index.next_id
        segment = bundle / wal_name(shard_of_id(gid, 2))
        framed = bytearray(frame(_wal_payload(gid, rows_a[0])))
        framed[-1] ^= 0x01
        segment.write_bytes(bytes(framed))
        with ShardedIndex.open(bundle) as reopened:
            assert reopened.n_rows == len(rows_a)
            assert reopened.counters["wal_replayed_records"] == 0.0

    def test_wal_record_in_wrong_shard_fails_loudly(self, tmp_path, encoder, rows_a):
        engine = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=2, threshold=4, k=30, seed=SEED
        )
        bundle = engine.save(tmp_path / "idx")
        gid = engine.index.next_id
        wrong = 1 - shard_of_id(gid, 2)
        (bundle / wal_name(wrong)).write_bytes(frame(_wal_payload(gid, rows_a[0])))
        with pytest.raises(SnapshotError, match="hashes to shard"):
            ShardedIndex.open(bundle).close()


class TestAtomicPublish:
    def test_failed_write_leaves_no_target(self, tmp_path):
        def boom(tmp):
            (tmp / "partial.npy").write_bytes(b"half")
            raise RuntimeError("killed mid-save")

        with pytest.raises(RuntimeError):
            write_dir_atomic(tmp_path / "out", boom)
        assert not (tmp_path / "out").exists()
        assert not list(tmp_path.iterdir())  # temp dir cleaned up

    def test_failed_resave_keeps_previous_bundle(
        self, tmp_path, encoder, rows_a, monkeypatch
    ):
        """Satellite: a killed QueryEngine.save never corrupts the old bundle."""
        engine = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        bundle = engine.save(tmp_path / "idx")
        assert load_index_snapshot(bundle).n_rows == len(rows_a)

        smaller = QueryEngine.build(rows_a[:10], encoder, threshold=4, k=30, seed=SEED)
        import repro.core.persist as persist

        real_save = persist.np.save
        calls = {"n": 0}

        def flaky_save(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise OSError("disk gone")
            return real_save(*args, **kwargs)

        monkeypatch.setattr(persist.np, "save", flaky_save)
        with pytest.raises(OSError):
            smaller.save(tmp_path / "idx")
        monkeypatch.setattr(persist.np, "save", real_save)
        assert load_index_snapshot(bundle).n_rows == len(rows_a)

    def test_sharded_save_is_atomic(self, tmp_path, encoder, rows_a, monkeypatch):
        engine = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=2, threshold=4, k=30, seed=SEED
        )
        bundle = engine.save(tmp_path / "idx")
        first = ShardedQueryEngine.from_bundle(bundle)
        assert first.n_indexed == len(rows_a)

        import repro.core.shards as shards

        def boom(*args, **kwargs):
            raise OSError("killed mid-compaction")

        # a compaction killed while writing shard bundles never swaps the
        # root manifest: the previous generation stays authoritative
        monkeypatch.setattr(shards, "save_index_snapshot", boom)
        engine.ingest(rows_a[:2])
        with pytest.raises(OSError):
            engine.compact()
        monkeypatch.undo()
        reopened = ShardedQueryEngine.from_bundle(bundle)
        assert reopened.index.version == 1
        assert reopened.n_indexed == len(rows_a) + 2  # WAL still replays


class TestStaleManifests:
    @pytest.fixture
    def bundle(self, tmp_path, encoder, rows_a):
        return ShardedQueryEngine.build(
            rows_a, encoder, n_shards=2, threshold=4, k=30, seed=SEED
        ).save(tmp_path / "idx")

    def test_kind_guards_both_loaders(self, tmp_path, bundle, encoder, rows_a):
        with pytest.raises(SnapshotError, match="sharded"):
            load_index_snapshot(bundle)
        single = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        single_bundle = single.save(tmp_path / "single")
        with pytest.raises(SnapshotError, match="not a sharded index"):
            ShardedIndex.open(single_bundle).close()
        assert is_sharded_bundle(bundle)
        assert not is_sharded_bundle(single_bundle)
        assert not is_sharded_bundle(tmp_path / "absent")

    def test_stale_shard_row_count(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        manifest["shards"][0]["n_rows"] += 1
        (bundle / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="stale"):
            ShardedIndex.open(bundle).close()

    def test_swapped_root_encoder(self, bundle):
        sidecar = json.loads((bundle / "encoder.json").read_text())
        sidecar["attributes"][0]["hash_a"] += 1
        (bundle / "encoder.json").write_text(json.dumps(sidecar))
        with pytest.raises(SnapshotError, match="fingerprint"):
            ShardedIndex.open(bundle).close()

    def test_unsupported_format_version(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        manifest["format_version"] = 99
        (bundle / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="version"):
            ShardedIndex.open(bundle).close()

    def test_non_monotonic_row_ids(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        shard_dir = bundle / manifest["shards"][0]["dir"]
        row_ids = np.load(shard_dir / "row_ids.npy")
        np.save(shard_dir / "row_ids.npy", row_ids[::-1].copy(), allow_pickle=False)
        with pytest.raises(SnapshotError, match="increasing"):
            ShardedIndex.open(bundle).close()


class TestMergedView:
    def test_pipeline_equals_full_linker(self, tmp_path, problem, encoder, rows_a):
        linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=SEED)
        linker.encoder = encoder
        want = linker.link(problem.dataset_a, problem.dataset_b)
        bundle = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=3, threshold=4, k=30, seed=SEED
        ).save(tmp_path / "idx")
        pipeline = LinkagePipeline(
            [
                LoadSnapshotStage(bundle),
                QueryEmbedStage(),
                ChunkedCandidateStage(),
                ThresholdVerifyStage(4, sort_pairs=True),
            ]
        )
        got = pipeline.run(problem.dataset_a, problem.dataset_b)
        assert want.matches == got.matches
        assert want.n_candidates == got.n_candidates
        assert got.counters["snapshot_shards"] == 3.0
        assert got.counters["wal_replayed_records"] == 0.0

    def test_streaming_linker_loads_sharded_bundle(
        self, tmp_path, encoder, rows_a, rows_b
    ):
        engine = ShardedQueryEngine.build(
            rows_a[:-2], encoder, n_shards=3, threshold=4, k=30, seed=SEED
        )
        bundle = engine.save(tmp_path / "idx")
        engine.ingest(rows_a[-2:])  # the merged view must fold the overlay
        engine.close()
        loaded = StreamingLinker.load_snapshot(bundle)
        streaming = StreamingLinker(encoder, threshold=4, k=30, seed=SEED)
        for values in rows_a:
            streaming.insert(values)
        assert loaded.query_batch(rows_b) == streaming.query_batch(rows_b)


class TestServingStats:
    def test_single_engine_accumulates_batch_timings(self, encoder, rows_a, rows_b):
        """Satellite: per-batch wall-clock survives _merge_stats."""
        engine = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        engine.query_batch(rows_b)
        engine.query_batch(rows_b)
        assert engine.stats["n_batches"] == 2.0
        assert engine.stats["n_queries"] == float(2 * len(rows_b))
        assert engine.stats["time_embed_s"] > 0.0
        assert engine.stats["time_query_s"] > 0.0
        assert "prefilter_reject_rate" not in engine.stats  # prefilter off

    def test_reject_rate_is_recomputed_not_summed(self, encoder, rows_a, rows_b):
        engine = QueryEngine.build(
            rows_a,
            encoder,
            threshold=4,
            k=30,
            seed=SEED,
            verify=VerifyConfig(tiers=(1,), block_rows=64),
        )
        engine.query_batch(rows_b)
        once = engine.stats["prefilter_reject_rate"]
        engine.query_batch(rows_b)
        assert engine.stats["prefilter_reject_rate"] == pytest.approx(once)
        assert 0.0 <= engine.stats["prefilter_reject_rate"] <= 1.0

    def test_sharded_engine_reports_fanout_and_shard_stats(
        self, encoder, rows_a, rows_b
    ):
        engine = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=3, threshold=4, k=30, seed=SEED
        )
        engine.query_batch(rows_b)
        for key in ("time_embed_s", "time_fanout_s", "time_merge_s"):
            assert engine.stats[key] >= 0.0
        assert engine.stats["n_batches"] == 1.0
        assert len(engine.shard_stats) == 3
        assert all(s["time_query_s"] >= 0.0 for s in engine.shard_stats)


class TestSerialSmallBatchPath:
    """Satellite: small batches skip fan-out machinery but stay identical."""

    def test_small_batch_takes_serial_path_with_identical_results(
        self, reference, encoder, rows_a, rows_b
    ):
        parallel = ParallelConfig(n_jobs=2, backend="thread")
        serial = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=3, threshold=4, k=30, seed=SEED,
            parallel=parallel,
        )
        fanout = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=3, threshold=4, k=30, seed=SEED,
            parallel=parallel, serial_batch_limit=None,
        )
        small = rows_b[:6]  # 6 * 3 shards = 18 tasks, far under the limit
        _assert_identical(serial.query_batch(small), fanout.query_batch(small))
        _assert_identical(reference.query_batch(small), serial.query_batch(small))
        assert serial.stats["n_serial_batches"] == 2.0
        assert "n_serial_batches" not in fanout.stats

    def test_limit_decides_per_batch(self, encoder, rows_a, rows_b):
        engine = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=3, threshold=4, k=30, seed=SEED,
            parallel=ParallelConfig(n_jobs=2, backend="thread"),
            serial_batch_limit=8,
        )
        engine.query_batch(rows_b[:2])  # 2 * 3 = 6 <= 8: serial
        assert engine.stats["n_serial_batches"] == 1.0
        engine.query_batch(rows_b)  # 150 * 3 = 450 > 8: fans out
        assert engine.stats["n_serial_batches"] == 1.0
        assert engine.stats["n_batches"] == 2.0

    def test_batch_time_histogram_records_every_batch(
        self, encoder, rows_a, rows_b
    ):
        engine = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=2, threshold=4, k=30, seed=SEED
        )
        engine.query_batch(rows_b[:4])
        engine.query_batch(rows_b)
        assert engine.batch_time_hist.count == 2
        assert engine.batch_time_hist.percentile(0.99) > 0.0
        single = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        single.query_batch(rows_b[:4])
        assert single.batch_time_hist.count == 1


class TestShardedCLI:
    @pytest.fixture(scope="class")
    def csv_pair(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli")
        dataset = NCVRGenerator().generate(60, seed=5)
        ref, extra = root / "ref.csv", root / "extra.csv"
        write_dataset(dataset, ref)
        write_dataset(NCVRGenerator().generate(20, seed=6), extra)
        return ref, extra

    def test_build_query_parity_and_ingest_compact(self, tmp_path, csv_pair, capsys):
        from repro.cli import main

        ref, extra = csv_pair
        single, sharded = tmp_path / "single", tmp_path / "sharded"
        base = ["index", "build", str(ref), "--threshold", "4", "--seed", "7"]
        assert main(base + ["-o", str(single)]) == 0
        assert main(base + ["-o", str(sharded), "--shards", "3"]) == 0
        assert is_sharded_bundle(sharded) and not is_sharded_bundle(single)

        out_single, out_sharded = tmp_path / "m1.csv", tmp_path / "m2.csv"
        query = ["index", "query", "--top-k", "2"]
        assert main(query + [str(single), str(ref), "-o", str(out_single)]) == 0
        assert main(
            query + [str(sharded), str(ref), "-o", str(out_sharded), "--n-jobs", "2"]
        ) == 0
        assert out_single.read_text() == out_sharded.read_text()

        assert main(["index", "ingest", str(sharded), str(extra)]) == 0
        assert main(["index", "compact", str(sharded)]) == 0
        assert main(["index", "bench", str(sharded), str(ref), "--repeat", "1"]) == 0
        output = capsys.readouterr().out
        assert "ingested 20 records" in output
        assert "version 2" in output
        assert "fanout" in output

    def test_ingest_rejects_single_bundle(self, tmp_path, csv_pair):
        from repro.cli import main

        ref, extra = csv_pair
        single = tmp_path / "single"
        assert (
            main(
                ["index", "build", str(ref), "-o", str(single), "--threshold", "4"]
            )
            == 0
        )
        with pytest.raises(SystemExit, match="not a sharded bundle"):
            main(["index", "ingest", str(single), str(extra)])
        with pytest.raises(SystemExit, match="not a sharded bundle"):
            main(["index", "compact", str(single)])
