"""Tests for the classic blocking baselines (sorted neighborhood, canopy)."""

import pytest

from repro.baselines.canopy import CanopyLinker
from repro.baselines.sorted_neighborhood import (
    SortedNeighborhoodLinker,
    default_sorting_key,
)
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.evaluation.metrics import evaluate_linkage


@pytest.fixture(scope="module")
def problem():
    return build_linkage_problem(NCVRGenerator(), 250, scheme_pl(), seed=91)


def quality_of(linker, problem):
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return evaluate_linkage(
        result.matches, problem.true_matches, result.n_candidates,
        problem.comparison_space,
    ), result


class TestSortingKey:
    def test_prefix_concatenation(self):
        assert default_sorting_key(("JONES", "SMITH"), prefix=3) == "JONSMI"

    def test_short_values(self):
        assert default_sorting_key(("A", "BC"), prefix=3) == "ABC"


class TestSortedNeighborhood:
    def test_finds_majority_of_matches(self, problem):
        linker = SortedNeighborhoodLinker(threshold=4, window=15, passes=2, seed=1)
        quality, __ = quality_of(linker, problem)
        assert quality.pairs_completeness >= 0.5
        assert quality.reduction_ratio >= 0.8

    def test_wider_window_more_complete(self, problem):
        narrow, __ = quality_of(
            SortedNeighborhoodLinker(threshold=4, window=4, seed=1), problem
        )
        wide, __ = quality_of(
            SortedNeighborhoodLinker(threshold=4, window=40, seed=1), problem
        )
        assert wide.pairs_completeness >= narrow.pairs_completeness
        assert wide.n_candidates >= narrow.n_candidates

    def test_multi_pass_improves_completeness(self, problem):
        single, __ = quality_of(
            SortedNeighborhoodLinker(threshold=4, window=10, passes=1, seed=1), problem
        )
        multi, __ = quality_of(
            SortedNeighborhoodLinker(threshold=4, window=10, passes=3, seed=1), problem
        )
        assert multi.pairs_completeness >= single.pairs_completeness

    def test_no_guarantee_unlike_lsh(self):
        """The paper's Related Work point: when the sorting key itself is
        corrupted (a typo in the first attribute), single-pass SN misses
        similar pairs — there is no Equation (2) to save it.  Extra passes
        with rotated keys partially recover."""
        from repro.data.perturb import PerturbationScheme

        scheme = PerturbationScheme(name="first-attr", ops_per_attribute={0: 1})
        hard = build_linkage_problem(NCVRGenerator(), 250, scheme, seed=91)
        single, __ = quality_of(
            SortedNeighborhoodLinker(threshold=4, window=2, passes=1, seed=1), hard
        )
        multi, __ = quality_of(
            SortedNeighborhoodLinker(threshold=4, window=10, passes=3, seed=1), hard
        )
        assert single.pairs_completeness < 0.9
        assert multi.pairs_completeness > single.pairs_completeness

    def test_matches_respect_threshold(self, problem):
        __, result = quality_of(
            SortedNeighborhoodLinker(threshold=4, window=10, seed=1), problem
        )
        assert (result.record_distances <= 4).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodLinker(threshold=4, window=1)
        with pytest.raises(ValueError):
            SortedNeighborhoodLinker(threshold=4, passes=0)


class TestCanopy:
    def test_finds_majority_of_matches(self, problem):
        linker = CanopyLinker(threshold=4, loose=0.7, tight=0.3, seed=2)
        quality, __ = quality_of(linker, problem)
        assert quality.pairs_completeness >= 0.8

    def test_looser_canopies_more_candidates(self, problem):
        tight, __ = quality_of(
            CanopyLinker(threshold=4, loose=0.4, tight=0.2, seed=2), problem
        )
        loose, __ = quality_of(
            CanopyLinker(threshold=4, loose=0.9, tight=0.2, seed=2), problem
        )
        assert loose.n_candidates >= tight.n_candidates

    def test_matches_respect_threshold(self, problem):
        __, result = quality_of(
            CanopyLinker(threshold=4, loose=0.7, tight=0.3, seed=2), problem
        )
        assert (result.record_distances <= 4).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            CanopyLinker(threshold=4, loose=0.3, tight=0.6)
        with pytest.raises(ValueError):
            CanopyLinker(threshold=4, loose=1.2)
