"""Tests for repro.text.alphabet."""

import pytest

from repro.text.alphabet import (
    Alphabet,
    AlphabetError,
    DEFAULT_ALPHABET,
    PAD_CHAR,
    TEXT_ALPHABET,
)


class TestAlphabetConstruction:
    def test_uppercase_has_26_letters(self):
        assert len(Alphabet.uppercase()) == 26

    def test_uppercase_padded_adds_pad_char(self):
        padded = Alphabet.uppercase_padded()
        assert len(padded) == 27
        assert PAD_CHAR in padded

    def test_alphanumeric_contains_digits_and_space(self):
        assert "7" in TEXT_ALPHABET
        assert " " in TEXT_ALPHABET
        assert "_" in TEXT_ALPHABET

    def test_duplicate_characters_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("ABBA")

    def test_empty_alphabet_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("")


class TestIndexing:
    def test_index_is_zero_based_order(self):
        assert DEFAULT_ALPHABET.index("A") == 0
        assert DEFAULT_ALPHABET.index("Z") == 25

    def test_paper_example_characters(self):
        # ord() values behind F('JO') = 248: J = 9, O = 14.
        assert DEFAULT_ALPHABET.index("J") == 9
        assert DEFAULT_ALPHABET.index("O") == 14

    def test_char_inverts_index(self):
        for i in range(len(DEFAULT_ALPHABET)):
            assert DEFAULT_ALPHABET.index(DEFAULT_ALPHABET.char(i)) == i

    def test_unknown_character_raises(self):
        with pytest.raises(AlphabetError, match="not in alphabet"):
            DEFAULT_ALPHABET.index("!")

    def test_char_out_of_range_raises(self):
        with pytest.raises(AlphabetError):
            DEFAULT_ALPHABET.char(26)

    def test_contains(self):
        assert "Q" in DEFAULT_ALPHABET
        assert "q" not in DEFAULT_ALPHABET


class TestQGramSpaceSize:
    def test_bigram_space_is_676(self):
        # The paper's m = |S|^q = 26^2.
        assert DEFAULT_ALPHABET.qgram_space_size(2) == 676

    def test_trigram_space(self):
        assert DEFAULT_ALPHABET.qgram_space_size(3) == 26**3

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_ALPHABET.qgram_space_size(0)
