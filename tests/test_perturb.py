"""Tests for repro.data.perturb."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.perturb import (
    ALL_OPERATIONS,
    Operation,
    PerturbationScheme,
    apply_operation,
    scheme_ph,
    scheme_pl,
)
from repro.data.schema import Record, Schema
from repro.text.alphabet import TEXT_ALPHABET
from repro.text.edit_distance import levenshtein

WORDS = st.text(alphabet="ABCDEFG", min_size=1, max_size=12)


class TestApplyOperation:
    @given(WORDS, st.integers(0, 1000))
    def test_substitute_is_one_edit(self, value, seed):
        rng = np.random.default_rng(seed)
        out = apply_operation(value, Operation.SUBSTITUTE, TEXT_ALPHABET, rng)
        assert len(out) == len(value)
        assert levenshtein(value, out) == 1

    @given(WORDS, st.integers(0, 1000))
    def test_insert_is_one_edit(self, value, seed):
        rng = np.random.default_rng(seed)
        out = apply_operation(value, Operation.INSERT, TEXT_ALPHABET, rng)
        assert len(out) == len(value) + 1
        assert levenshtein(value, out) == 1

    @given(WORDS, st.integers(0, 1000))
    def test_delete_is_one_edit(self, value, seed):
        rng = np.random.default_rng(seed)
        out = apply_operation(value, Operation.DELETE, TEXT_ALPHABET, rng)
        assert len(out) == len(value) - 1
        assert levenshtein(value, out) == 1

    def test_empty_string_degrades_to_insert(self):
        rng = np.random.default_rng(0)
        for op in (Operation.DELETE, Operation.SUBSTITUTE):
            out = apply_operation("", op, TEXT_ALPHABET, rng)
            assert len(out) == 1

    @given(WORDS, st.integers(0, 200))
    def test_never_inserts_blank_or_pad(self, value, seed):
        rng = np.random.default_rng(seed)
        out = apply_operation(value, Operation.INSERT, TEXT_ALPHABET, rng)
        inserted = set(out) - set(value)
        assert " " not in inserted and "_" not in inserted


class TestSchemes:
    @pytest.fixture
    def schema(self):
        return Schema.of("f1", "f2", "f3", "f4")

    @pytest.fixture
    def record(self):
        return Record("A0", ("JONES", "SMITH", "12 MAIN ST APT 4", "BOONE"))

    def test_pl_perturbs_exactly_one_attribute(self, schema, record):
        rng = np.random.default_rng(1)
        perturbed, log = scheme_pl().perturb(record, schema, rng, "B0")
        assert len(log) == 1
        changed = [
            i for i in range(4) if perturbed.values[i] != record.values[i]
        ]
        assert len(changed) == 1
        assert schema[changed[0]].name == log[0].attribute

    def test_pl_attribute_choice_varies(self, schema, record):
        rng = np.random.default_rng(2)
        attrs = {
            scheme_pl().perturb(record, schema, rng, f"B{i}")[1][0].attribute
            for i in range(60)
        }
        assert len(attrs) == 4  # all attributes eventually chosen

    def test_ph_distribution(self, schema, record):
        rng = np.random.default_rng(3)
        perturbed, log = scheme_ph().perturb(record, schema, rng, "B0")
        by_attr = {}
        for entry in log:
            by_attr[entry.attribute] = by_attr.get(entry.attribute, 0) + 1
        assert by_attr == {"f1": 1, "f2": 1, "f3": 2}
        assert perturbed.values[3] == record.values[3]  # f4 untouched

    def test_ph_edit_distances_within_rule_thresholds(self, schema, record):
        """PH produces <= 1 edit on f1/f2 and <= 2 on f3 (rule C1's basis)."""
        rng = np.random.default_rng(4)
        for i in range(30):
            perturbed, __ = scheme_ph().perturb(record, schema, rng, f"B{i}")
            assert levenshtein(record.values[0], perturbed.values[0]) <= 1
            assert levenshtein(record.values[1], perturbed.values[1]) <= 1
            assert levenshtein(record.values[2], perturbed.values[2]) <= 2

    def test_restricted_operations(self, schema, record):
        rng = np.random.default_rng(5)
        scheme = scheme_pl(operations=[Operation.DELETE])
        __, log = scheme.perturb(record, schema, rng, "B0")
        assert log[0].operation is Operation.DELETE

    def test_scheme_validation(self):
        with pytest.raises(ValueError):
            PerturbationScheme(name="bad")
        with pytest.raises(ValueError):
            PerturbationScheme(name="bad", random_single=True, ops_per_attribute={0: 1})
        with pytest.raises(ValueError):
            PerturbationScheme(name="bad", ops_per_attribute={0: 0})

    def test_out_of_range_attribute(self, record):
        schema2 = Schema.of("f1", "f2")
        rng = np.random.default_rng(6)
        scheme = PerturbationScheme(name="x", ops_per_attribute={5: 1})
        with pytest.raises(ValueError, match="attribute index"):
            scheme.perturb(Record("A0", ("A", "B")), schema2, rng, "B0")

    def test_total_operations(self):
        assert scheme_pl().total_operations(4) == 1
        assert scheme_ph().total_operations(4) == 4

    def test_new_id_applied(self, schema, record):
        rng = np.random.default_rng(7)
        perturbed, __ = scheme_pl().perturb(record, schema, rng, "B42")
        assert perturbed.record_id == "B42"
