"""Tests for repro.hamming.distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.bitvector import BitVector
from repro.hamming.distance import (
    hamming,
    hamming_int,
    hamming_packed,
    jaccard_distance_sets,
    masked_hamming_rows,
    normalized_hamming,
)


class TestScalarDistances:
    def test_hamming_int(self):
        assert hamming_int(0b1010, 0b0110) == 2

    def test_hamming_int_rejects_negative(self):
        with pytest.raises(ValueError):
            hamming_int(-1, 0)

    def test_hamming_wraps_bitvector(self):
        v1 = BitVector.from_indices(8, [0])
        v2 = BitVector.from_indices(8, [1])
        assert hamming(v1, v2) == 2

    def test_normalized(self):
        v1 = BitVector.from_indices(10, [0, 1])
        v2 = BitVector(10)
        assert normalized_hamming(v1, v2) == pytest.approx(0.2)


class TestHammingPacked:
    def test_rowwise(self):
        a = np.asarray([[0b1010, 0], [0b1111, 1]], dtype=np.uint64)
        b = np.asarray([[0b0110, 0], [0b1111, 0]], dtype=np.uint64)
        assert hamming_packed(a, b).tolist() == [2, 1]

    def test_broadcast_single_row(self):
        a = np.asarray([0b1, 0], dtype=np.uint64)
        b = np.asarray([[0b0, 0], [0b1, 1]], dtype=np.uint64)
        assert hamming_packed(a, b).tolist() == [1, 1]


class TestJaccard:
    def test_paper_jones_jonas_example(self):
        # Section 5.1: u_J('JONES', 'JONAS') ~= 0.667 on bigram sets.
        from repro.core.qgram import qgram_index_set

        u1 = qgram_index_set("JONES")
        u2 = qgram_index_set("JONAS")
        assert jaccard_distance_sets(u1, u2) == pytest.approx(2 / 3, abs=1e-3)

    def test_paper_washington_example(self):
        # Same single-substitution error, longer string: distance shrinks.
        from repro.core.qgram import qgram_index_set

        u1 = qgram_index_set("WASHINGTON")
        u2 = qgram_index_set("WASHANGTON")
        assert jaccard_distance_sets(u1, u2) == pytest.approx(0.364, abs=1e-2)

    def test_empty_sets(self):
        assert jaccard_distance_sets(set(), set()) == 0.0

    def test_disjoint(self):
        assert jaccard_distance_sets({1}, {2}) == 1.0

    def test_identical(self):
        assert jaccard_distance_sets({1, 2}, {1, 2}) == 0.0


class TestMaskedHammingRows:
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=190),
        st.integers(min_value=1, max_value=190),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60)
    def test_matches_slice_reference(self, n_rows, start, width, seed):
        n_bits = 192
        stop = min(start + width, n_bits)
        if stop <= start:
            stop = start + 1
        rng = np.random.default_rng(seed)
        words_a = rng.integers(0, 2**63, size=(n_rows, 3), dtype=np.int64).astype(np.uint64)
        words_b = rng.integers(0, 2**63, size=(n_rows, 3), dtype=np.int64).astype(np.uint64)
        ma = BitMatrix(words_a, n_bits)
        mb = BitMatrix(words_b, n_bits)
        rows = np.arange(n_rows)
        got = masked_hamming_rows(words_a, rows, words_b, rows, start, stop)
        for i in range(n_rows):
            expected = ma.row(i).slice(start, stop).hamming(mb.row(i).slice(start, stop))
            assert got[i] == expected

    def test_word_aligned_range(self):
        words = np.asarray([[np.uint64(0xFFFFFFFFFFFFFFFF), np.uint64(0)]], dtype=np.uint64)
        zeros = np.zeros_like(words)
        rows = np.asarray([0])
        assert masked_hamming_rows(words, rows, zeros, rows, 0, 64).tolist() == [64]
        assert masked_hamming_rows(words, rows, zeros, rows, 64, 128).tolist() == [0]

    def test_invalid_range(self):
        words = np.zeros((1, 1), dtype=np.uint64)
        with pytest.raises(ValueError):
            masked_hamming_rows(words, np.asarray([0]), words, np.asarray([0]), 5, 5)

    def test_stop_beyond_packed_width(self):
        words = np.zeros((1, 2), dtype=np.uint64)
        rows = np.asarray([0])
        with pytest.raises(ValueError, match="exceeds the packed width"):
            masked_hamming_rows(words, rows, words, rows, 0, 129)

    def test_stop_checked_against_narrower_side(self):
        wide = np.zeros((1, 3), dtype=np.uint64)
        narrow = np.zeros((1, 2), dtype=np.uint64)
        rows = np.asarray([0])
        with pytest.raises(ValueError, match="exceeds the packed width"):
            masked_hamming_rows(wide, rows, narrow, rows, 0, 160)

    def test_row_length_mismatch(self):
        words = np.zeros((3, 1), dtype=np.uint64)
        with pytest.raises(ValueError, match="parallel arrays"):
            masked_hamming_rows(
                words, np.asarray([0, 1]), words, np.asarray([0, 1, 2]), 0, 64
            )
