"""Tests for repro.text.edit_distance, incl. metric-space properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.edit_distance import (
    damerau_levenshtein,
    levenshtein,
    levenshtein_within,
    matches_within,
)

WORDS = st.text(alphabet="ABCDE", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "s1, s2, expected",
        [
            ("JONES", "JONES", 0),
            ("JONES", "JONAS", 1),  # paper's substitute example
            ("JONES", "JONS", 1),  # paper's delete example
            ("JONES", "JONEAS", 1),  # paper's insert example
            ("SHANNEN", "SHENNEN", 1),
            ("", "", 0),
            ("", "ABC", 3),
            ("ABC", "", 3),
            ("KITTEN", "SITTING", 3),
            ("FLAW", "LAWN", 2),
        ],
    )
    def test_known_distances(self, s1, s2, expected):
        assert levenshtein(s1, s2) == expected

    @given(WORDS)
    def test_identity(self, s):
        assert levenshtein(s, s) == 0

    @given(WORDS, WORDS)
    def test_symmetry(self, s1, s2):
        assert levenshtein(s1, s2) == levenshtein(s2, s1)

    @given(WORDS, WORDS, WORDS)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(WORDS, WORDS)
    def test_bounded_by_longer_length(self, s1, s2):
        assert levenshtein(s1, s2) <= max(len(s1), len(s2))

    @given(WORDS, WORDS)
    def test_at_least_length_difference(self, s1, s2):
        assert levenshtein(s1, s2) >= abs(len(s1) - len(s2))


class TestLevenshteinWithin:
    @given(WORDS, WORDS, st.integers(min_value=0, max_value=6))
    def test_agrees_with_full_computation(self, s1, s2, limit):
        full = levenshtein(s1, s2)
        banded = levenshtein_within(s1, s2, limit)
        if full <= limit:
            assert banded == full
        else:
            assert banded is None

    def test_early_exit_on_length_gap(self):
        assert levenshtein_within("A" * 30, "A", 3) is None

    def test_zero_limit(self):
        assert levenshtein_within("SAME", "SAME", 0) == 0
        assert levenshtein_within("SAME", "SANE", 0) is None

    def test_negative_limit_raises(self):
        with pytest.raises(ValueError):
            levenshtein_within("A", "B", -1)

    def test_matches_within(self):
        assert matches_within("JONES", "JONAS", 1)
        assert not matches_within("JONES", "SMITH", 2)


class TestDamerauLevenshtein:
    def test_transposition_counts_one(self):
        assert damerau_levenshtein("JONES", "JONSE") == 1
        # Plain Levenshtein needs two operations for the same swap.
        assert levenshtein("JONES", "JONSE") == 2

    @given(WORDS, WORDS)
    def test_never_exceeds_levenshtein(self, s1, s2):
        assert damerau_levenshtein(s1, s2) <= levenshtein(s1, s2)

    @given(WORDS)
    def test_identity(self, s):
        assert damerau_levenshtein(s, s) == 0

    def test_empty_sides(self):
        assert damerau_levenshtein("", "ABC") == 3
        assert damerau_levenshtein("ABC", "") == 3
