"""Tests for the write-ahead segment substrate (repro.wal).

The contract under test is durability framing: a record is surfaced by
replay **iff** its complete CRC-valid frame reached the file, replay
stops at the first torn frame (never resynchronises past garbage), and
truncation restores a segment to exactly its durable prefix so appends
can resume.
"""

import zlib

import pytest

from repro.wal import (
    FRAME_OVERHEAD,
    SegmentWriter,
    frame,
    replay_segment,
    truncate_segment,
)


class TestFrame:
    def test_layout(self):
        framed = frame(b"hello")
        assert len(framed) == FRAME_OVERHEAD + 5
        assert framed[FRAME_OVERHEAD:] == b"hello"
        assert int.from_bytes(framed[:4], "little") == 5
        assert int.from_bytes(framed[4:8], "little") == zlib.crc32(b"hello")

    def test_empty_payload_is_framable(self, tmp_path):
        path = tmp_path / "seg.wal"
        path.write_bytes(frame(b""))
        result = replay_segment(path)
        assert result.records == [b""] and result.clean


class TestReplay:
    def test_missing_file_is_empty_and_clean(self, tmp_path):
        result = replay_segment(tmp_path / "absent.wal")
        assert result.records == [] and result.durable_bytes == 0 and result.clean

    def test_empty_file_is_empty_and_clean(self, tmp_path):
        path = tmp_path / "seg.wal"
        path.write_bytes(b"")
        assert replay_segment(path).clean

    def test_records_come_back_in_append_order(self, tmp_path):
        path = tmp_path / "seg.wal"
        payloads = [b"first", b"second", b"third record, longer"]
        path.write_bytes(b"".join(frame(p) for p in payloads))
        result = replay_segment(path)
        assert result.records == payloads
        assert result.clean
        assert result.durable_bytes == path.stat().st_size

    def test_truncated_header_tail(self, tmp_path):
        path = tmp_path / "seg.wal"
        path.write_bytes(frame(b"durable") + b"\x05\x00")  # half a header
        result = replay_segment(path)
        assert result.records == [b"durable"]
        assert result.torn_bytes == 2

    def test_truncated_payload_tail(self, tmp_path):
        """Kill between append and fsync: the torn frame is never surfaced."""
        path = tmp_path / "seg.wal"
        torn = frame(b"acknowledged") + frame(b"in flight")[:-3]
        path.write_bytes(torn)
        result = replay_segment(path)
        assert result.records == [b"acknowledged"]
        assert result.durable_bytes == len(frame(b"acknowledged"))
        assert result.torn_bytes == len(frame(b"in flight")) - 3

    def test_crc_mismatch_stops_replay(self, tmp_path):
        """A bit-flipped record hides itself AND everything behind it."""
        path = tmp_path / "seg.wal"
        good, bad, behind = frame(b"good"), bytearray(frame(b"flip")), frame(b"behind")
        bad[-1] ^= 0x40
        path.write_bytes(good + bytes(bad) + behind)
        result = replay_segment(path)
        assert result.records == [b"good"]
        assert result.torn_bytes == len(bad) + len(behind)

    def test_zero_length_garbage_header_is_torn(self, tmp_path):
        """A header promising length 0 with a wrong CRC does not loop forever."""
        path = tmp_path / "seg.wal"
        path.write_bytes(frame(b"ok") + b"\x00\x00\x00\x00\xff\xff\xff\xff")
        result = replay_segment(path)
        assert result.records == [b"ok"]
        assert not result.clean


class TestTruncate:
    def test_truncate_then_append_recovers(self, tmp_path):
        path = tmp_path / "seg.wal"
        path.write_bytes(frame(b"keep") + frame(b"torn")[:-2])
        result = replay_segment(path)
        truncate_segment(path, result.durable_bytes)
        assert path.stat().st_size == result.durable_bytes
        with SegmentWriter(path) as writer:
            writer.append(b"after recovery")
        assert replay_segment(path).records == [b"keep", b"after recovery"]

    def test_rejects_negative_offset(self, tmp_path):
        path = tmp_path / "seg.wal"
        path.write_bytes(frame(b"x"))
        with pytest.raises(ValueError, match="durable_bytes"):
            truncate_segment(path, -1)


class TestSegmentWriter:
    def test_append_is_immediately_replayable(self, tmp_path):
        path = tmp_path / "dir" / "seg.wal"  # parent dirs are created
        writer = SegmentWriter(path)
        writer.append(b"one")
        assert replay_segment(path).records == [b"one"]  # durable before ack
        writer.append(b"two")
        writer.close()
        assert replay_segment(path).records == [b"one", b"two"]

    def test_batched_sync(self, tmp_path):
        path = tmp_path / "seg.wal"
        with SegmentWriter(path) as writer:
            for i in range(5):
                writer.append(f"r{i}".encode(), sync=False)
            writer.sync()
        assert len(replay_segment(path).records) == 5

    def test_reopen_appends_not_truncates(self, tmp_path):
        path = tmp_path / "seg.wal"
        with SegmentWriter(path) as writer:
            writer.append(b"first session")
        with SegmentWriter(path) as writer:
            writer.append(b"second session")
        assert replay_segment(path).records == [b"first session", b"second session"]

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = SegmentWriter(tmp_path / "seg.wal")
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            writer.append(b"late")
