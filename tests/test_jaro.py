"""Tests for repro.text.jaro."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.jaro import jaro, jaro_winkler, jaro_winkler_distance

WORDS = st.text(alphabet="ABCDE", max_size=10)


class TestJaro:
    def test_classic_martha_example(self):
        assert jaro("MARTHA", "MARHTA") == pytest.approx(0.9444, abs=1e-3)

    def test_identical(self):
        assert jaro("DWAYNE", "DWAYNE") == 1.0

    def test_disjoint(self):
        assert jaro("ABC", "XYZ") == 0.0

    def test_empty_vs_nonempty(self):
        assert jaro("", "ABC") == 0.0

    def test_both_empty_are_identical(self):
        assert jaro("", "") == 1.0

    @given(WORDS, WORDS)
    def test_range(self, s1, s2):
        assert 0.0 <= jaro(s1, s2) <= 1.0

    @given(WORDS, WORDS)
    def test_symmetry(self, s1, s2):
        assert jaro(s1, s2) == pytest.approx(jaro(s2, s1))


class TestJaroWinkler:
    def test_prefix_bonus(self):
        assert jaro_winkler("MARTHA", "MARHTA") > jaro("MARTHA", "MARHTA")

    def test_no_bonus_without_common_prefix(self):
        s1, s2 = "ABCD", "XBCD"
        assert jaro_winkler(s1, s2) == pytest.approx(jaro(s1, s2))

    def test_prefix_capped_at_four(self):
        # Identical 5-char prefix scores the same as identical 4-char prefix
        # (relative to the same base Jaro).
        base = jaro("ABCDEF", "ABCDEX")
        expected = base + 4 * 0.1 * (1 - base)
        assert jaro_winkler("ABCDEF", "ABCDEX") == pytest.approx(expected)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler("A", "B", prefix_scale=0.5)

    @given(WORDS, WORDS)
    def test_at_least_jaro(self, s1, s2):
        assert jaro_winkler(s1, s2) >= jaro(s1, s2) - 1e-12

    @given(WORDS, WORDS)
    def test_distance_complements_similarity(self, s1, s2):
        assert jaro_winkler_distance(s1, s2) == pytest.approx(1.0 - jaro_winkler(s1, s2))
