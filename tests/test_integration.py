"""Cross-module integration tests: the paper's headline shapes, in miniature.

Each test runs a full linkage pipeline on a small synthetic problem and
asserts the *qualitative* result the corresponding paper figure reports.
The benchmark harness (benchmarks/) regenerates the quantitative series.
"""

import pytest

from repro.baselines import BfHLinker, HarraLinker
from repro.core.linker import CompactHammingLinker
from repro.data import (
    DBLPGenerator,
    NCVRGenerator,
    build_linkage_problem,
    scheme_ph,
    scheme_pl,
)
from repro.evaluation.experiment import run_experiment
from repro.evaluation.metrics import evaluate_linkage
from repro.rules.parser import parse_rule

NCVR_NAMES = ["FirstName", "LastName", "Address", "Town"]
NCVR_K = {"FirstName": 5, "LastName": 5, "Address": 10}
DBLP_NAMES = ["FirstName", "LastName", "Title", "Year"]
DBLP_K = {"FirstName": 5, "LastName": 5, "Title": 12}
PH_RULE_NCVR = parse_rule("(FirstName<=4) & (LastName<=4) & (Address<=8)")
PH_RULE_DBLP = parse_rule("(FirstName<=4) & (LastName<=4) & (Title<=8)")


def quality_of(linker, problem):
    result = linker.link(problem.dataset_a, problem.dataset_b)
    return evaluate_linkage(
        result.matches, problem.true_matches, result.n_candidates, problem.comparison_space
    )


class TestFigure9Shapes:
    """cBV-HB's PC stays >= 0.95 on both dataset families and schemes."""

    def test_cbv_pc_ncvr_pl(self, small_pl_problem):
        quality = quality_of(
            CompactHammingLinker.record_level(threshold=4, k=30, seed=1),
            small_pl_problem,
        )
        assert quality.pairs_completeness >= 0.95

    def test_cbv_pc_ncvr_ph(self, small_ph_problem):
        quality = quality_of(
            CompactHammingLinker.rule_aware(
                PH_RULE_NCVR, k=NCVR_K, attribute_names=NCVR_NAMES, seed=2
            ),
            small_ph_problem,
        )
        assert quality.pairs_completeness >= 0.95

    def test_cbv_pc_dblp_pl(self):
        problem = build_linkage_problem(DBLPGenerator(), 400, scheme_pl(), seed=51)
        quality = quality_of(
            CompactHammingLinker.record_level(threshold=4, k=30, seed=3), problem
        )
        assert quality.pairs_completeness >= 0.95

    def test_cbv_pc_dblp_ph(self):
        problem = build_linkage_problem(DBLPGenerator(), 400, scheme_ph(), seed=52)
        quality = quality_of(
            CompactHammingLinker.rule_aware(
                PH_RULE_DBLP, k=DBLP_K, attribute_names=DBLP_NAMES, seed=4
            ),
            problem,
        )
        assert quality.pairs_completeness >= 0.95

    def test_cbv_beats_harra_on_pc(self, small_pl_problem):
        cbv = quality_of(
            CompactHammingLinker.record_level(threshold=4, k=30, seed=5),
            small_pl_problem,
        )
        harra = quality_of(
            HarraLinker(threshold=0.35, k=5, n_tables=30, seed=5), small_pl_problem
        )
        # HARRA's early pruning plus record-level bigram vector keeps it
        # behind cBV-HB (Figure 9(a)); allow equality on small samples.
        assert cbv.pairs_completeness >= harra.pairs_completeness - 0.02


class TestFigure12Shapes:
    def test_reduction_ratio_high_for_hamming_methods(self, small_pl_problem):
        for linker in (
            CompactHammingLinker.record_level(threshold=4, k=30, seed=6),
            BfHLinker(
                {name: 45 for name in NCVR_NAMES},
                n_attributes=4, names=NCVR_NAMES, k=30, seed=6,
            ),
        ):
            quality = quality_of(linker, small_pl_problem)
            assert quality.reduction_ratio >= 0.95


class TestFigure6Shapes:
    """Rule-aware blocking beats standard record-level blocking on PC."""

    def test_rule_aware_pc_at_least_standard(self, small_ph_problem):
        rule_aware = quality_of(
            CompactHammingLinker.rule_aware(
                PH_RULE_NCVR, k=NCVR_K, attribute_names=NCVR_NAMES, seed=7
            ),
            small_ph_problem,
        )
        # Standard blocking with the record-level threshold implied by PH
        # (4 + 4 + 8 = 16 bits) samples bits blind to the rule.
        standard = quality_of(
            CompactHammingLinker.record_level(threshold=16, k=30, seed=7),
            small_ph_problem,
        )
        assert rule_aware.pairs_completeness >= standard.pairs_completeness - 0.02


class TestExperimentHarnessEndToEnd:
    def test_repeated_trials_stable(self, small_pl_problem):
        result = run_experiment(
            "cbv",
            lambda seed: CompactHammingLinker.record_level(threshold=4, k=30, seed=seed),
            small_pl_problem,
            n_trials=3,
            base_seed=100,
        )
        assert result.mean_pc >= 0.95
        assert result.stdev("PC") <= 0.05
