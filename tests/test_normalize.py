"""Tests for repro.text.normalize."""

import pytest

from repro.text.alphabet import TEXT_ALPHABET
from repro.text.normalize import normalize, pad, strip_accents


class TestStripAccents:
    def test_umlaut(self):
        assert strip_accents("Müller") == "Muller"

    def test_acute(self):
        assert strip_accents("José") == "Jose"

    def test_plain_ascii_unchanged(self):
        assert strip_accents("SMITH") == "SMITH"


class TestNormalize:
    def test_uppercases(self):
        assert normalize("jones") == "JONES"

    def test_drops_punctuation_by_default(self):
        assert normalize("O'BRIEN, JR.") == "OBRIENJR"

    def test_keeps_spaces_with_text_alphabet(self):
        assert normalize("12 main st", alphabet=TEXT_ALPHABET) == "12 MAIN ST"

    def test_drops_digits_with_default_alphabet(self):
        assert normalize("AB12CD") == "ABCD"

    def test_replace_policy(self):
        assert normalize("A-B", unknown="replace", replacement="X") == "AXB"

    def test_error_policy(self):
        with pytest.raises(ValueError, match="not in alphabet"):
            normalize("A-B", unknown="error")

    def test_collapses_whitespace(self):
        assert normalize("  A   B  ", alphabet=TEXT_ALPHABET) == "A B"

    def test_accent_then_filter(self):
        assert normalize("Björk") == "BJORK"

    def test_empty_string(self):
        assert normalize("") == ""


class TestPad:
    def test_bigram_padding_matches_paper_footnote(self):
        # Footnote 4: '_JONES_'.
        assert pad("JONES", 2) == "_JONES_"

    def test_trigram_padding(self):
        assert pad("AB", 3) == "__AB__"

    def test_q1_no_padding(self):
        assert pad("ABC", 1) == "ABC"

    def test_empty_string_not_padded(self):
        assert pad("", 2) == ""

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            pad("A", 0)

    def test_multichar_pad_rejected(self):
        with pytest.raises(ValueError):
            pad("A", 2, pad_char="__")
