"""Tests for repro.hamming.sketch (sketch-prefiltered verification).

The prefilter's contract is *byte identity*: it may only reject pairs
whose partial distance — an exact lower bound — already exceeds the
threshold, so its output must equal the plain full-width sweep on every
input.  These properties are checked on random packed matrices; the
golden-parity suite checks the same contract through every registry
linker.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.bitmatrix import BitMatrix
from repro.hamming.lsh import HammingLSH
from repro.hamming.query import batch_query
from repro.hamming.sketch import (
    VerifyConfig,
    partial_hamming_rows,
    reject_rate,
    sketch_word_order,
    verify_pairs,
    verify_pairs_topk,
)


def _random_words(rng, n_rows, n_words):
    return rng.integers(0, 2**63, size=(n_rows, n_words), dtype=np.int64).astype(
        np.uint64
    )


def _random_pairs(rng, n_a, n_b, n_pairs):
    return (
        rng.integers(0, n_a, size=n_pairs).astype(np.int64),
        rng.integers(0, n_b, size=n_pairs).astype(np.int64),
    )


def _plain_sweep(words_a, rows_a, words_b, rows_b):
    xor = words_a[rows_a] ^ words_b[rows_b]
    return np.bitwise_count(xor).sum(axis=1).astype(np.int64)


class TestVerifyConfig:
    def test_defaults_valid(self):
        config = VerifyConfig()
        assert config.enabled
        assert config.tiers == (3, 8)

    def test_empty_tiers_rejected(self):
        with pytest.raises(ValueError, match="at least one sketch width"):
            VerifyConfig(tiers=())

    @pytest.mark.parametrize("tiers", [(3, 3), (5, 2), (0, 4), (-1,)])
    def test_non_increasing_tiers_rejected(self, tiers):
        with pytest.raises(ValueError, match="strictly increasing"):
            VerifyConfig(tiers=tiers)

    def test_block_rows_must_be_positive(self):
        with pytest.raises(ValueError, match="block_rows"):
            VerifyConfig(block_rows=0)


class TestSketchWordOrder:
    def test_is_a_permutation(self):
        order = sketch_word_order(24, seed=0)
        assert sorted(order.tolist()) == list(range(24))

    def test_deterministic_in_seed(self):
        assert np.array_equal(sketch_word_order(16, 3), sketch_word_order(16, 3))
        assert not np.array_equal(sketch_word_order(16, 3), sketch_word_order(16, 4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sketch_word_order(0, seed=0)


class TestPartialHammingRows:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60)
    def test_lower_bound_and_full_equality(self, n_words, n_pairs, seed):
        """Any word subset lower-bounds the exact distance; all words equal it."""
        rng = np.random.default_rng(seed)
        words_a = _random_words(rng, 8, n_words)
        words_b = _random_words(rng, 8, n_words)
        rows_a, rows_b = _random_pairs(rng, 8, 8, n_pairs)
        exact = _plain_sweep(words_a, rows_a, words_b, rows_b)
        n_subset = int(rng.integers(1, n_words + 1))
        subset = rng.permutation(n_words)[:n_subset].astype(np.int64)
        partial = partial_hamming_rows(words_a, rows_a, words_b, rows_b, subset)
        assert np.all(partial <= exact)
        full = partial_hamming_rows(
            words_a, rows_a, words_b, rows_b, np.arange(n_words)
        )
        assert np.array_equal(full, exact)

    def test_blocking_is_invisible(self):
        rng = np.random.default_rng(11)
        words = _random_words(rng, 32, 4)
        rows_a, rows_b = _random_pairs(rng, 32, 32, 500)
        cols = np.asarray([2, 0])
        unblocked = partial_hamming_rows(words, rows_a, words, rows_b, cols)
        blocked = partial_hamming_rows(
            words, rows_a, words, rows_b, cols, block_rows=7
        )
        assert np.array_equal(unblocked, blocked)

    def test_row_length_mismatch(self):
        words = np.zeros((3, 1), dtype=np.uint64)
        with pytest.raises(ValueError, match="parallel arrays"):
            partial_hamming_rows(
                words, np.asarray([0, 1]), words, np.asarray([0]), np.asarray([0])
            )


class TestVerifyPairs:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=1, max_value=17),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80)
    def test_identical_to_plain_sweep(
        self, n_words, n_pairs, threshold, block_rows, seed
    ):
        rng = np.random.default_rng(seed)
        words_a = _random_words(rng, 10, n_words)
        # Plant near-duplicates so thresholds actually accept some pairs.
        words_b = words_a[rng.integers(0, 10, size=12)].copy()
        words_b[rng.integers(0, 12), rng.integers(0, n_words)] ^= np.uint64(0b1011)
        rows_a, rows_b = _random_pairs(rng, 10, 12, n_pairs)
        exact = _plain_sweep(words_a, rows_a, words_b, rows_b)
        keep = exact <= threshold
        tiers = tuple(sorted({int(t) for t in rng.integers(1, n_words + 2, size=2)}))
        config = VerifyConfig(tiers=tiers, block_rows=block_rows, seed=int(seed) % 5)
        counters: dict[str, float] = {}
        kept_a, kept_b, dist = verify_pairs(
            words_a, rows_a, words_b, rows_b, threshold, config, counters
        )
        assert np.array_equal(kept_a, rows_a[keep])
        assert np.array_equal(kept_b, rows_b[keep])
        assert np.array_equal(dist, exact[keep])
        # Counter bookkeeping: every pair is either rejected at some tier
        # or swept exactly; no pair is dropped or double-counted.
        rejected = sum(v for k, v in counters.items() if k.startswith("pairs_rejected"))
        assert counters["pairs_prefiltered"] == float(n_pairs)
        assert rejected + counters.get("pairs_exact", 0.0) == float(n_pairs)

    def test_per_pair_thresholds(self):
        rng = np.random.default_rng(2)
        words = _random_words(rng, 16, 3)
        rows_a, rows_b = _random_pairs(rng, 16, 16, 300)
        exact = _plain_sweep(words, rows_a, words, rows_b)
        bounds = rng.integers(0, 192, size=300).astype(np.int64)
        keep = exact <= bounds
        config = VerifyConfig(tiers=(1, 2), block_rows=64)
        kept_a, kept_b, dist = verify_pairs(
            words, rows_a, words, rows_b, bounds, config
        )
        assert np.array_equal(kept_a, rows_a[keep])
        assert np.array_equal(kept_b, rows_b[keep])
        assert np.array_equal(dist, exact[keep])

    def test_empty_input(self):
        words = np.zeros((1, 2), dtype=np.uint64)
        empty = np.empty(0, dtype=np.int64)
        counters: dict[str, float] = {}
        kept_a, kept_b, dist = verify_pairs(
            words, empty, words, empty, 4, VerifyConfig(), counters
        )
        assert kept_a.size == kept_b.size == dist.size == 0
        assert counters["pairs_prefiltered"] == 0.0

    def test_row_length_mismatch(self):
        words = np.zeros((2, 2), dtype=np.uint64)
        with pytest.raises(ValueError, match="parallel arrays"):
            verify_pairs(
                words, np.asarray([0, 1]), words, np.asarray([0]), 4, VerifyConfig()
            )

    def test_width_mismatch(self):
        wide = np.zeros((2, 3), dtype=np.uint64)
        narrow = np.zeros((2, 2), dtype=np.uint64)
        rows = np.asarray([0, 1])
        with pytest.raises(ValueError, match="packed widths differ"):
            verify_pairs(wide, rows, narrow, rows, 4, VerifyConfig())


def _brute_topk(words_a, rows_a, words_b, rows_b, threshold, top_k):
    """Reference top-k: exact sweep, per-query (distance, id) cut."""
    exact = _plain_sweep(words_a, rows_a, words_b, rows_b)
    keep = exact <= threshold
    rows_a, rows_b, exact = rows_a[keep], rows_b[keep], exact[keep]
    selected: list[tuple[int, int, int]] = []
    for query in np.unique(rows_b):
        mask = rows_b == query
        ranked = sorted(zip(exact[mask], rows_a[mask]))[:top_k]
        selected.extend((int(query), int(rid), int(d)) for d, rid in ranked)
    return sorted(selected)


def _cut_topk(kept_a, kept_b, dist, top_k):
    """The caller-side sort-and-cut applied to a verify_pairs_topk superset."""
    selected: list[tuple[int, int, int]] = []
    for query in np.unique(kept_b):
        mask = kept_b == query
        ranked = sorted(zip(dist[mask], kept_a[mask]))[:top_k]
        selected.extend((int(query), int(rid), int(d)) for d, rid in ranked)
    return sorted(selected)


class TestVerifyPairsTopK:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=80),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60)
    def test_superset_reduces_to_exact_topk(self, n_words, n_pairs, top_k, seed):
        rng = np.random.default_rng(seed)
        words_a = _random_words(rng, 12, n_words)
        words_b = words_a[rng.integers(0, 12, size=8)].copy()
        words_b[rng.integers(0, 8), rng.integers(0, n_words)] ^= np.uint64(0b111)
        rows_a, rows_b = _random_pairs(rng, 12, 8, n_pairs)
        # Dedup (query, id) pairs — candidate streams never repeat a pair.
        composite = rows_b * 12 + rows_a
        unique = np.unique(composite)
        rows_a, rows_b = unique % 12, unique // 12
        threshold = int(rng.integers(0, 64 * n_words + 1))
        config = VerifyConfig(tiers=(1, 2), block_rows=13)
        counters: dict[str, float] = {}
        kept_a, kept_b, dist = verify_pairs_topk(
            words_a, rows_a, words_b, rows_b, threshold, top_k, config, counters
        )
        # Every surviving pair carries its true exact distance within the
        # threshold, and the ordinary cut recovers the brute-force top-k.
        assert np.array_equal(dist, _plain_sweep(words_a, kept_a, words_b, kept_b))
        assert np.all(dist <= threshold)
        want = _brute_topk(words_a, rows_a, words_b, rows_b, threshold, top_k)
        assert _cut_topk(kept_a, kept_b, dist, top_k) == want
        assert counters["pairs_prefiltered"] == float(rows_a.size)

    def test_rejects_bad_top_k(self):
        words = np.zeros((2, 1), dtype=np.uint64)
        rows = np.asarray([0, 1])
        with pytest.raises(ValueError, match="top_k"):
            verify_pairs_topk(words, rows, words, rows, 4, 0, VerifyConfig())

    def test_empty_input(self):
        words = np.zeros((1, 1), dtype=np.uint64)
        empty = np.empty(0, dtype=np.int64)
        kept_a, kept_b, dist = verify_pairs_topk(
            words, empty, words, empty, 4, 3, VerifyConfig()
        )
        assert kept_a.size == kept_b.size == dist.size == 0


class TestRejectRate:
    def test_empty_counters(self):
        assert reject_rate({}) == 0.0

    def test_fraction(self):
        counters = {"pairs_prefiltered": 10.0, "pairs_exact": 3.0}
        assert reject_rate(counters) == pytest.approx(0.7)


class TestBatchQueryPrefilter:
    """batch_query answers identically with the prefilter on and off."""

    @pytest.fixture(scope="class")
    def indexed(self):
        rng = np.random.default_rng(5)
        n_bits, n_words = 192, 3
        words_a = _random_words(rng, 60, n_words)
        words_b = words_a[rng.integers(0, 60, size=40)].copy()
        flips = rng.integers(0, n_words, size=40)
        words_b[np.arange(40), flips] ^= np.uint64(0x5)
        matrix_a = BitMatrix(words_a, n_bits)
        matrix_b = BitMatrix(words_b, n_bits)
        lsh = HammingLSH(n_bits=n_bits, k=12, threshold=8, seed=5)
        lsh.index(matrix_a)
        return lsh, matrix_a, matrix_b

    @pytest.mark.parametrize("top_k", [None, 1, 3])
    def test_prefilter_parity(self, indexed, top_k):
        lsh, matrix_a, matrix_b = indexed
        plain = batch_query(lsh, matrix_a.words, matrix_b, threshold=8, top_k=top_k)
        counters: dict[str, float] = {}
        config = VerifyConfig(tiers=(1, 2), block_rows=32)
        filtered = batch_query(
            lsh,
            matrix_a.words,
            matrix_b,
            threshold=8,
            top_k=top_k,
            verify=config,
            counters=counters,
        )
        for want, got in zip(plain, filtered):
            assert np.array_equal(want, got)
        assert counters.get("pairs_prefiltered", 0.0) > 0

    def test_disabled_config_skips_counters(self, indexed):
        lsh, matrix_a, matrix_b = indexed
        counters: dict[str, float] = {}
        batch_query(
            lsh,
            matrix_a.words,
            matrix_b,
            threshold=8,
            verify=VerifyConfig(enabled=False),
            counters=counters,
        )
        assert counters == {}
