"""Tests for repro.core.cvector — universal hashing and c-vector encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cvector import CVectorEncoder, HASH_PRIME, UniversalHash
from repro.core.qgram import QGramScheme


class TestUniversalHash:
    def test_formula(self):
        g = UniversalHash(a=3, b=7, m=10)
        assert g(5) == ((3 * 5 + 7) % HASH_PRIME) % 10

    def test_vectorised_matches_scalar(self):
        g = UniversalHash(a=12345, b=6789, m=68)
        xs = np.arange(0, 676, 7)
        assert g.apply(xs).tolist() == [g(int(x)) for x in xs]

    def test_range(self):
        g = UniversalHash.random(15, np.random.default_rng(0))
        values = g.apply(np.arange(676))
        assert values.min() >= 0 and values.max() < 15

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            UniversalHash(a=0, b=1, m=10)
        with pytest.raises(ValueError):
            UniversalHash(a=1, b=0, m=10)
        with pytest.raises(ValueError):
            UniversalHash(a=1, b=1, m=0)
        with pytest.raises(ValueError):
            UniversalHash(a=HASH_PRIME, b=1, m=10)

    def test_random_draws_reproducible(self):
        g1 = UniversalHash.random(10, np.random.default_rng(42))
        g2 = UniversalHash.random(10, np.random.default_rng(42))
        assert (g1.a, g1.b) == (g2.a, g2.b)

    def test_near_uniform_occupancy(self):
        """Hashing the whole bigram space fills slots roughly evenly."""
        g = UniversalHash.random(15, np.random.default_rng(7))
        counts = np.bincount(g.apply(np.arange(676)), minlength=15)
        assert counts.min() > 0
        assert counts.max() / counts.min() < 2.0


class TestCVectorEncoder:
    def test_width(self):
        assert CVectorEncoder(15, seed=0).encode("JONES").n_bits == 15

    def test_deterministic_per_encoder(self):
        enc = CVectorEncoder(15, seed=1)
        assert enc.encode("JONES") == enc.encode("JONES")

    def test_same_seed_same_embedding(self):
        e1, e2 = CVectorEncoder(15, seed=5), CVectorEncoder(15, seed=5)
        assert e1.encode("SMITH") == e2.encode("SMITH")

    def test_compact_indices_are_hashed_u_s(self):
        enc = CVectorEncoder(15, seed=2)
        u_s = enc.scheme.index_set("JOHN")
        assert enc.compact_indices("JOHN") == frozenset(enc.hash_fn(x) for x in u_s)

    def test_collisions_accounting(self):
        enc = CVectorEncoder(15, seed=3)
        value = "CONSTANTINOPLE"
        u_s = enc.scheme.index_set(value)
        assert enc.collisions(value) == len(u_s) - enc.encode(value).count()

    def test_empty_string_gives_zero_vector(self):
        assert CVectorEncoder(15, seed=4).encode("").count() == 0

    def test_hash_modulus_must_match_m(self):
        g = UniversalHash(a=3, b=5, m=10)
        with pytest.raises(ValueError):
            CVectorEncoder(15, hash_fn=g)

    def test_encode_all_matches_individual(self):
        enc = CVectorEncoder(22, seed=6)
        values = ["JONES", "SMITH", "", "JONES", "WASHINGTON"]
        matrix = enc.encode_all(values)
        for i, value in enumerate(values):
            assert matrix.row(i) == enc.encode(value)

    def test_encode_all_empty_rejected(self):
        with pytest.raises(ValueError):
            CVectorEncoder(10, seed=0).encode_all([])

    @given(st.text(alphabet="ABCDEFG", min_size=2, max_size=12), st.integers(0, 100))
    @settings(max_examples=60)
    def test_distance_never_exceeds_full_space(self, s, seed):
        """Collisions only shrink distances: d in H-hat <= d in H."""
        enc = CVectorEncoder(15, seed=seed)
        perturbed = s[:-1] + ("X" if s[-1] != "X" else "Y")
        full = enc.scheme.vector(s).hamming(enc.scheme.vector(perturbed))
        compact = enc.encode(s).hamming(enc.encode(perturbed))
        assert compact <= full


class TestCalibration:
    def test_calibrated_size_follows_theorem_1(self):
        # All values have exactly 5 bigrams -> b = 5 -> m_opt = 15.
        values = ["ABCDEF", "GHIJKL", "MNOPQR"]
        enc = CVectorEncoder.calibrated(values, rho=1, r=1 / 3)
        assert enc.m == 15

    def test_measured_b_stored(self):
        enc = CVectorEncoder.calibrated(["ABCD", "EFGHEF"], rho=1, r=1 / 3)
        assert enc.b == pytest.approx(4.0)  # (3 + 5) / 2

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            CVectorEncoder.calibrated([])

    def test_all_empty_strings_rejected(self):
        with pytest.raises(ValueError, match="no q-grams"):
            CVectorEncoder.calibrated(["", "A"])

    def test_scheme_carried_through(self):
        scheme = QGramScheme(q=3)
        enc = CVectorEncoder.calibrated(["ABCDEFGH"], scheme=scheme)
        assert enc.scheme.q == 3


class TestCollisionStatistics:
    def test_average_collisions_within_budget(self):
        """Across many random values, observed collisions track Lemma 1."""
        rng = np.random.default_rng(11)
        letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        values = [
            "".join(letters[i] for i in rng.integers(0, 26, size=6)) for __ in range(500)
        ]
        enc = CVectorEncoder.calibrated(values, rho=1, r=1 / 3, seed=12)
        observed = np.mean([enc.collisions(v) for v in values])
        assert observed <= 1.25  # rho = 1 with sampling slack
