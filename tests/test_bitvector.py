"""Tests for repro.hamming.bitvector."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hamming.bitvector import BitVector


def vectors(width=st.integers(min_value=1, max_value=200)):
    return width.flatmap(
        lambda n: st.builds(
            BitVector, st.just(n), st.integers(min_value=0, max_value=(1 << n) - 1)
        )
    )


def vector_pairs():
    return st.integers(min_value=1, max_value=200).flatmap(
        lambda n: st.tuples(
            st.builds(BitVector, st.just(n), st.integers(0, (1 << n) - 1)),
            st.builds(BitVector, st.just(n), st.integers(0, (1 << n) - 1)),
        )
    )


class TestConstruction:
    def test_from_indices(self):
        v = BitVector.from_indices(8, [0, 3, 7])
        assert v.indices() == [0, 3, 7]
        assert v.count() == 3

    def test_from_indices_duplicates_idempotent(self):
        assert BitVector.from_indices(8, [1, 1, 1]) == BitVector.from_indices(8, [1])

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector.from_indices(8, [8])

    def test_from_bits(self):
        v = BitVector.from_bits([1, 0, 1, 1])
        assert v.n_bits == 4
        assert v.indices() == [0, 2, 3]

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BitVector.from_bits([0, 2])

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0)

    def test_value_beyond_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(3, 8)


class TestAccess:
    def test_getitem_and_iter_agree(self):
        v = BitVector.from_indices(10, [2, 5])
        assert [v[i] for i in range(10)] == list(v)

    def test_negative_index(self):
        v = BitVector.from_indices(4, [3])
        assert v[-1] == 1

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(4)[4]

    @given(vectors())
    def test_count_equals_len_indices(self, v):
        assert v.count() == len(v.indices())


class TestHamming:
    def test_distance_counts_differing_positions(self):
        v1 = BitVector.from_indices(8, [0, 1, 2])
        v2 = BitVector.from_indices(8, [1, 2, 3])
        assert v1.hamming(v2) == 2

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitVector(4).hamming(BitVector(5))

    @given(vector_pairs())
    def test_symmetry(self, pair):
        v1, v2 = pair
        assert v1.hamming(v2) == v2.hamming(v1)

    @given(vectors())
    def test_identity(self, v):
        assert v.hamming(v) == 0

    @given(vector_pairs())
    def test_equals_xor_popcount(self, pair):
        v1, v2 = pair
        assert v1.hamming(v2) == (v1 ^ v2).count()

    @given(vector_pairs())
    def test_symmetric_difference_of_index_sets(self, pair):
        v1, v2 = pair
        assert v1.hamming(v2) == len(set(v1.indices()) ^ set(v2.indices()))


class TestAlgebra:
    def test_concat_low_bits_first(self):
        left = BitVector.from_indices(4, [0])
        right = BitVector.from_indices(4, [1])
        combined = left.concat(right)
        assert combined.n_bits == 8
        assert combined.indices() == [0, 5]

    @given(vector_pairs())
    def test_concat_preserves_counts(self, pair):
        v1, v2 = pair
        assert v1.concat(v2).count() == v1.count() + v2.count()

    def test_slice_recovers_concat_parts(self):
        left = BitVector.from_indices(5, [1, 4])
        right = BitVector.from_indices(7, [0, 6])
        combined = left.concat(right)
        assert combined.slice(0, 5) == left
        assert combined.slice(5, 12) == right

    def test_slice_invalid_range(self):
        with pytest.raises(ValueError):
            BitVector(8).slice(5, 3)

    def test_set_returns_copy(self):
        v = BitVector(4)
        w = v.set(2)
        assert v.count() == 0
        assert w.indices() == [2]


class TestConversion:
    @given(vectors())
    def test_packed_roundtrip(self, v):
        assert BitVector.from_packed(v.to_packed(), v.n_bits) == v

    @given(vectors())
    def test_to_array_matches_iteration(self, v):
        assert v.to_array().tolist() == list(v)

    def test_packed_width_beyond_64(self):
        v = BitVector.from_indices(130, [0, 64, 129])
        packed = v.to_packed()
        assert packed.shape == (3,)
        assert BitVector.from_packed(packed, 130) == v

    def test_hashable(self):
        v = BitVector.from_indices(8, [1])
        assert v in {BitVector.from_indices(8, [1])}

    def test_numpy_interop(self):
        v = BitVector.from_indices(70, [69])
        assert np.bitwise_count(v.to_packed()).sum() == 1
