"""Tests for repro.data.schema."""

import numpy as np
import pytest

from repro.data.schema import (
    AttributeSpec,
    Dataset,
    Record,
    Schema,
    dataset_from_rows,
)


@pytest.fixture
def schema():
    return Schema.of("FirstName", "LastName")


@pytest.fixture
def dataset(schema):
    return Dataset(
        schema,
        [
            Record("R0", ("JONES", "SMITH")),
            Record("R1", ("MARIA", "GARCIA")),
            Record("R2", ("PETER", "WALKER")),
        ],
    )


class TestSchema:
    def test_names(self, schema):
        assert schema.names == ("FirstName", "LastName")
        assert schema.n_attributes == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.of("a", "a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Schema(())

    def test_attribute_lookup(self, schema):
        assert schema.attribute("LastName").name == "LastName"
        with pytest.raises(KeyError):
            schema.attribute("Town")

    def test_iteration_and_indexing(self, schema):
        assert [a.name for a in schema] == list(schema.names)
        assert schema[0].name == "FirstName"

    def test_clean_normalises(self):
        spec = AttributeSpec("Name")
        assert spec.clean(" o'brien ") == "OBRIEN"


class TestRecord:
    def test_value_access(self):
        record = Record("R1", ("A", "B"))
        assert record.value(1) == "B"

    def test_replace_value_copies(self):
        record = Record("R1", ("A", "B"))
        replaced = record.replace_value(0, "X")
        assert replaced.values == ("X", "B")
        assert record.values == ("A", "B")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Record("", ("A",))


class TestDataset:
    def test_len_iter_getitem(self, dataset):
        assert len(dataset) == 3
        assert dataset[1].record_id == "R1"
        assert [r.record_id for r in dataset] == ["R0", "R1", "R2"]

    def test_arity_validated(self, schema):
        with pytest.raises(ValueError):
            Dataset(schema, [Record("R0", ("only-one",))])

    def test_duplicate_ids_rejected(self, schema):
        with pytest.raises(ValueError, match="unique"):
            Dataset(schema, [Record("R0", ("A", "B")), Record("R0", ("C", "D"))])

    def test_index_of(self, dataset):
        assert dataset.index_of("R2") == 2

    def test_column(self, dataset):
        assert dataset.column("LastName") == ["SMITH", "GARCIA", "WALKER"]

    def test_value_rows(self, dataset):
        assert dataset.value_rows()[0] == ("JONES", "SMITH")

    def test_sample_bounds(self, dataset):
        rng = np.random.default_rng(0)
        assert len(dataset.sample(2, rng)) == 2
        assert len(dataset.sample(10, rng)) == 3

    def test_from_rows(self, schema):
        ds = dataset_from_rows(schema, [("A", "B"), ("C", "D")], id_prefix="X")
        assert ds[0].record_id == "X0"
        assert len(ds) == 2
