"""Tests for repro.pipeline — the stage runner, shared stages and registry."""

import numpy as np
import pytest

from repro.core.linker import CompactHammingLinker, StreamingLinker
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.perf import ParallelConfig
from repro.pipeline import (
    BlockStage,
    CalibrateStage,
    CandidateStage,
    ClassifyStage,
    EmbedStage,
    LinkagePipeline,
    PipelineContext,
    PipelineStage,
    Stage,
    VerifyStage,
    available_linkers,
    create_linker,
    get_linker,
    linker_names,
)
from repro.pipeline.exhaustive import AllPairsCandidateStage, ExhaustiveLinker
from repro.baselines.minhash import MinHashLinker


@pytest.fixture(scope="module")
def problem():
    return build_linkage_problem(NCVRGenerator(), 120, scheme_pl(), seed=11)


class _Recorder(PipelineStage):
    """Test stage: records its invocation and emits a fixed match set."""

    kind = "verify"
    timing = "match"

    def __init__(self, log, label):
        self.log = log
        self.label = label

    def run(self, ctx: PipelineContext) -> None:
        self.log.append(self.label)
        ctx.out_a = np.asarray([0], dtype=np.int64)
        ctx.out_b = np.asarray([1], dtype=np.int64)
        ctx.n_candidates = 1


class TestRunner:
    def test_requires_stages(self):
        with pytest.raises(ValueError, match="at least one stage"):
            LinkagePipeline([])

    def test_stages_run_in_order(self):
        log = []
        pipeline = LinkagePipeline([_Recorder(log, "first"), _Recorder(log, "second")])
        result = pipeline.run([("a",)], [("a",), ("b",)])
        assert log == ["first", "second"]
        assert result.matches == {(0, 1)}
        assert result.comparison_space == 2

    def test_timings_accumulate_by_key(self):
        log = []
        pipeline = LinkagePipeline([_Recorder(log, "x"), _Recorder(log, "y")])
        result = pipeline.run([("a",)], [("b",)])
        # Both stages share the 'match' timing key -> one accumulated entry.
        assert set(result.timings) == {"match"}

    def test_accepts_raw_sequences_and_datasets(self, problem):
        raw_rows = problem.dataset_a.value_rows()
        log = []
        pipeline = LinkagePipeline([_Recorder(log, "z")])
        via_dataset = pipeline.run(problem.dataset_a, problem.dataset_a)
        via_rows = pipeline.run(raw_rows, raw_rows)
        assert via_dataset.comparison_space == via_rows.comparison_space

    def test_empty_output_defaults(self):
        class _Noop(PipelineStage):
            def run(self, ctx):
                pass

        result = LinkagePipeline([_Noop()]).run([("a",)], [("b",)])
        assert result.n_matches == 0
        assert result.matches == set()


class TestStageKinds:
    def test_stage_protocol_runtime_checkable(self):
        log = []
        assert isinstance(_Recorder(log, "s"), Stage)

    def test_kind_and_timing_mapping(self):
        assert CalibrateStage.kind == "calibrate" and CalibrateStage.timing == "calibrate"
        assert EmbedStage.kind == "embed" and EmbedStage.timing == "embed"
        assert BlockStage.kind == "block" and BlockStage.timing == "index"
        assert CandidateStage.kind == "candidates" and CandidateStage.timing == "match"
        assert VerifyStage.kind == "verify" and VerifyStage.timing == "match"
        assert ClassifyStage.kind == "classify" and ClassifyStage.timing == "match"

    def test_name_defaults_to_class_name(self):
        assert _Recorder([], "s").name == "_Recorder"

    def test_base_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            PipelineStage().run(None)


class TestStreamingLink:
    def test_link_matches_batch_linker(self, problem):
        batch = CompactHammingLinker.record_level(threshold=4, k=30, seed=3)
        encoder = batch.calibrate(problem.dataset_a, problem.dataset_b)
        batch_result = batch.link(problem.dataset_a, problem.dataset_b)

        streaming = StreamingLinker(encoder, threshold=4, k=30, seed=3)
        result = streaming.link(problem.dataset_a, problem.dataset_b)
        assert result.matches == batch_result.matches
        assert set(result.timings) == {"index", "match"}
        assert len(streaming) == len(problem.dataset_a)


class TestExhaustiveLinker:
    def test_matches_brute_force(self, problem):
        from repro.core.encoder import RecordEncoder
        from repro.core.qgram import QGramScheme
        from repro.text.alphabet import TEXT_ALPHABET

        full = ExhaustiveLinker(threshold=4, seed=3).link(
            problem.dataset_a, problem.dataset_b
        )
        assert full.n_candidates == full.comparison_space

        # Same embedding, verified pair by pair without the pipeline.
        rows_a = problem.dataset_a.value_rows()
        rows_b = problem.dataset_b.value_rows()
        encoder = RecordEncoder.calibrated(
            rows_a[:1000], scheme=QGramScheme(alphabet=TEXT_ALPHABET), seed=3
        )
        matrix_a = encoder.encode_dataset(rows_a)
        matrix_b = encoder.encode_dataset(rows_b)
        expected = set()
        for i in range(len(rows_a)):
            idx = np.full(len(rows_b), i, dtype=np.int64)
            dist = matrix_a.hamming_rows(idx, matrix_b, np.arange(len(rows_b)))
            expected |= {(i, int(j)) for j in np.flatnonzero(dist <= 4)}
        assert full.matches == expected

    def test_deterministic_and_njobs_invariant(self, problem):
        results = [
            ExhaustiveLinker(
                threshold=4, seed=3, parallel=ParallelConfig(n_jobs=n), max_chunk_pairs=1024
            ).link(problem.dataset_a, problem.dataset_b)
            for n in (1, 2, 1)
        ]
        assert results[0].matches == results[1].matches == results[2].matches
        assert np.array_equal(results[0].rows_a, results[1].rows_a)
        assert np.array_equal(results[0].rows_b, results[1].rows_b)

    def test_chunking_bounds_chunks(self):
        ctx = PipelineContext(
            dataset_a=None,
            dataset_b=None,
            rows_a=[("x",)] * 7,
            rows_b=[("y",)] * 5,
            parallel=ParallelConfig(),
        )
        AllPairsCandidateStage(max_chunk_pairs=8).run(ctx)
        assert ctx.n_candidates == 35
        assert all(chunk_a.size <= 8 for chunk_a, __ in ctx.candidate_chunks)
        got = sorted(
            (int(a), int(b))
            for chunk_a, chunk_b in ctx.candidate_chunks
            for a, b in zip(chunk_a, chunk_b)
        )
        assert got == [(i, j) for i in range(7) for j in range(5)]


class TestMinHashLinker:
    def test_deterministic(self, problem):
        first = MinHashLinker(threshold=0.35, seed=5).link(
            problem.dataset_a, problem.dataset_b
        )
        second = MinHashLinker(threshold=0.35, seed=5).link(
            problem.dataset_a, problem.dataset_b
        )
        assert first.matches == second.matches
        assert first.n_candidates == second.n_candidates

    def test_exact_minhash_dominates_harra(self, problem):
        from repro.baselines import HarraLinker

        ideal = MinHashLinker(threshold=0.35, seed=5).link(
            problem.dataset_a, problem.dataset_b
        )
        harra = HarraLinker(threshold=0.35, seed=5).link(
            problem.dataset_a, problem.dataset_b
        )
        # The exact, non-pruning variant finds at least as many matches.
        assert ideal.n_matches >= harra.n_matches

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            MinHashLinker(threshold=1.5)


class TestRegistry:
    def test_all_linkers_registered(self):
        assert linker_names() == (
            "cbv-record",
            "cbv-rule",
            "streaming",
            "exhaustive",
            "bfh",
            "canopy",
            "harra",
            "minhash",
            "smeb",
            "sorted-neighborhood",
        )

    def test_specs_have_summaries(self):
        for spec in available_linkers():
            assert spec.summary
            assert callable(spec.factory)

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="cbv-record"):
            get_linker("no-such-linker")

    def test_create_linker(self, problem):
        linker = create_linker("exhaustive", threshold=4, seed=3)
        result = linker.link(problem.dataset_a, problem.dataset_b)
        assert result.n_candidates == result.comparison_space

    def test_every_factory_builds_a_pipeline_linker(self):
        from repro.rules.parser import parse_rule

        kwargs = {
            "cbv-record": {"threshold": 4},
            "cbv-rule": {"rule": parse_rule("(f1<=4)"), "k": {"f1": 5}},
            "streaming": None,  # needs a calibrated encoder; covered above
            "exhaustive": {"threshold": 4},
            "bfh": {"attribute_thresholds": {"f1": 45}, "n_attributes": 2},
            "canopy": {"threshold": 4},
            "harra": {},
            "minhash": {},
            "smeb": {"attribute_thresholds": {"f1": 4.5}, "n_attributes": 2},
            "sorted-neighborhood": {"threshold": 4},
        }
        for spec in available_linkers():
            init = kwargs[spec.name]
            if init is None:
                continue
            linker = spec.factory(**init)
            assert hasattr(linker, "link")


class TestCounters:
    def test_cbv_counters_present(self, problem):
        linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=3)
        result = linker.link(problem.dataset_a, problem.dataset_b)
        for key in (
            "intern_values",
            "intern_unique",
            "intern_hit_rate",
            "pairs_generated",
            "pairs_unique",
            "pairs_verified",
        ):
            assert key in result.counters

    def test_summary_keys(self, problem):
        linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=3)
        result = linker.link(problem.dataset_a, problem.dataset_b)
        summary = result.summary()
        assert summary["n_matches"] == result.n_matches
        assert summary["n_candidates"] == result.n_candidates
        assert summary["comparison_space"] == result.comparison_space
        assert 0.0 <= summary["reduction_ratio"] <= 1.0
        for key in result.timings:
            assert f"time_{key}_s" in summary
