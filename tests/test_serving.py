"""Tests for index snapshots (repro.core.persist) and repro.serve.

Three layers of the serving story:

* the snapshot bundle round-trips **bit-identically** — loading must give
  the same candidates, matches and packed words as the in-memory index
  that produced it, with payloads still memory-mapped (zero-copy);
* corrupt or stale bundles fail loudly with :class:`SnapshotError`, never
  with silently wrong candidates;
* :class:`repro.serve.QueryEngine` answers batched threshold / top-k
  queries byte-identically for every ``n_jobs`` / backend / start-method
  configuration, including the golden-parity fixture.
"""

import json

import numpy as np
import pytest

from repro.core.linker import CompactHammingLinker, StreamingLinker
from repro.core.persist import (
    IndexSnapshot,
    SnapshotError,
    encoder_fingerprint,
    load_index_snapshot,
    save_index_snapshot,
)
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.core.encoder import RecordEncoder
from repro.data.generators import EXPERIMENT_SCHEME
from repro.hamming.lsh import HammingLSH
from repro.perf import ParallelConfig
from repro.pipeline import (
    ChunkedCandidateStage,
    LoadSnapshotStage,
    QueryEmbedStage,
    ThresholdVerifyStage,
)
from repro.pipeline.runner import LinkagePipeline
from repro.serve import QueryEngine
from tests.golden_linkers import (
    GOLDEN_PATH,
    K,
    PROBLEM_SEED,
    THRESHOLD,
    make_problem,
)

SEED = 11
N = 150


@pytest.fixture(scope="module")
def problem():
    return build_linkage_problem(NCVRGenerator(), N, scheme_pl(), seed=SEED)


@pytest.fixture(scope="module")
def encoder(problem):
    rows = list(problem.dataset_a.value_rows()) + list(problem.dataset_b.value_rows())
    return RecordEncoder.calibrated(rows, scheme=EXPERIMENT_SCHEME, seed=SEED)


@pytest.fixture(scope="module")
def rows_a(problem):
    return [tuple(r) for r in problem.dataset_a.value_rows()]


@pytest.fixture(scope="module")
def rows_b(problem):
    return [tuple(r) for r in problem.dataset_b.value_rows()]


def _build_index(encoder, rows, k=30, seed=SEED, threshold=4):
    matrix = encoder.encode_dataset(rows)
    lsh = HammingLSH(
        n_bits=encoder.total_bits, k=k, threshold=threshold, seed=seed
    )
    lsh.index(matrix)
    return matrix, lsh


class TestSnapshotRoundTrip:
    def test_bit_identical_candidates_and_words(
        self, tmp_path, encoder, rows_a, rows_b
    ):
        matrix, lsh = _build_index(encoder, rows_a)
        bundle = save_index_snapshot(tmp_path / "idx", encoder, matrix, lsh, threshold=4)
        snap = load_index_snapshot(bundle)
        assert np.array_equal(np.asarray(snap.matrix.words), matrix.words)
        matrix_b = encoder.encode_dataset(rows_b)
        want = lsh.candidate_pairs(matrix_b)
        got = snap.lsh.candidate_pairs(matrix_b)
        assert np.array_equal(want[0], got[0]) and np.array_equal(want[1], got[1])
        assert snap.threshold == 4
        assert snap.path == bundle

    def test_payloads_stay_memory_mapped(self, tmp_path, encoder, rows_a):
        matrix, lsh = _build_index(encoder, rows_a)
        bundle = save_index_snapshot(tmp_path / "idx", encoder, matrix, lsh)
        snap = load_index_snapshot(bundle, mmap_mode="r")
        base = snap.matrix.words
        while getattr(base, "base", None) is not None:
            base = base.base
        assert type(base).__name__ == "mmap" or isinstance(base, np.memmap)

    def test_encoder_round_trips_bit_identically(self, tmp_path, encoder, rows_a):
        matrix, lsh = _build_index(encoder, rows_a)
        bundle = save_index_snapshot(tmp_path / "idx", encoder, matrix, lsh)
        snap = load_index_snapshot(bundle)
        assert encoder_fingerprint(snap.encoder) == encoder_fingerprint(encoder)
        assert snap.encoder.encode_dataset(rows_a[:10]) == encoder.encode_dataset(
            rows_a[:10]
        )

    def test_wide_composite_keys_round_trip(self, tmp_path, encoder, rows_a, rows_b):
        """K > 64 exercises the packed-bytes (void dtype) key representation."""
        matrix, lsh = _build_index(encoder, rows_a, k=70)
        bundle = save_index_snapshot(tmp_path / "idx", encoder, matrix, lsh)
        snap = load_index_snapshot(bundle)
        matrix_b = encoder.encode_dataset(rows_b)
        want = lsh.candidate_pairs(matrix_b)
        got = snap.lsh.candidate_pairs(matrix_b)
        assert np.array_equal(want[0], got[0]) and np.array_equal(want[1], got[1])

    def test_streaming_overlay_compacted_at_save(self, tmp_path, encoder, rows_a, rows_b):
        """Dict-overlay inserts are merged into the sorted bulk arrays."""
        streaming = StreamingLinker(encoder, threshold=4, k=30, seed=SEED)
        for values in rows_a:
            streaming.insert(values)
        bundle = streaming.save_snapshot(tmp_path / "idx")
        loaded = StreamingLinker.load_snapshot(bundle)
        assert len(loaded) == len(rows_a)
        assert loaded.query_batch(rows_b) == streaming.query_batch(rows_b)

    def test_insert_after_load_copies_on_grow(self, tmp_path, encoder, rows_a, rows_b):
        streaming = StreamingLinker(encoder, threshold=4, k=30, seed=SEED)
        for values in rows_a[:-1]:
            streaming.insert(values)
        bundle = streaming.save_snapshot(tmp_path / "idx")
        loaded = StreamingLinker.load_snapshot(bundle)
        loaded.insert(rows_a[-1])
        streaming.insert(rows_a[-1])
        assert loaded.query_batch(rows_b) == streaming.query_batch(rows_b)
        # the bundle on disk is untouched by the post-load insert
        assert load_index_snapshot(bundle).n_rows == len(rows_a) - 1


class TestSnapshotErrors:
    @pytest.fixture
    def bundle(self, tmp_path, encoder, rows_a):
        matrix, lsh = _build_index(encoder, rows_a)
        return save_index_snapshot(tmp_path / "idx", encoder, matrix, lsh, threshold=4)

    def test_missing_bundle(self, tmp_path):
        with pytest.raises(SnapshotError, match="manifest"):
            load_index_snapshot(tmp_path / "nope")

    def test_version_mismatch(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        manifest["format_version"] = 99
        (bundle / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="version"):
            load_index_snapshot(bundle)

    def test_truncated_payload(self, bundle):
        payload = bundle / "words.npy"
        payload.write_bytes(payload.read_bytes()[:-64])
        with pytest.raises(SnapshotError):
            load_index_snapshot(bundle)

    def test_missing_payload(self, bundle):
        (bundle / "ids.npy").unlink()
        with pytest.raises(SnapshotError, match="ids.npy"):
            load_index_snapshot(bundle)

    def test_stale_encoder_sidecar(self, bundle):
        """An encoder swapped in after save must be rejected (fingerprint)."""
        sidecar = json.loads((bundle / "encoder.json").read_text())
        sidecar["attributes"][0]["hash_a"] += 1
        (bundle / "encoder.json").write_text(json.dumps(sidecar))
        with pytest.raises(SnapshotError, match="fingerprint"):
            load_index_snapshot(bundle)

    def test_corrupt_manifest_json(self, bundle):
        (bundle / "manifest.json").write_text("{not json")
        with pytest.raises(SnapshotError):
            load_index_snapshot(bundle)


def _arrays(result):
    return result.queries, result.ids, result.distances


def _assert_identical(left, right):
    assert all(np.array_equal(a, b) for a, b in zip(_arrays(left), _arrays(right)))


class TestQueryEngine:
    @pytest.fixture(scope="class")
    def engine(self, encoder, rows_a):
        return QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)

    def test_matches_streaming_reference(self, engine, encoder, rows_a, rows_b):
        streaming = StreamingLinker(encoder, threshold=4, k=30, seed=SEED)
        for values in rows_a:
            streaming.insert(values)
        assert engine.query_batch(rows_b).matches() == streaming.query_batch(rows_b)

    def test_top_k_matches_streaming_reference(self, engine, encoder, rows_a, rows_b):
        streaming = StreamingLinker(encoder, threshold=4, k=30, seed=SEED)
        for values in rows_a:
            streaming.insert(values)
        got = engine.query_batch(rows_b, top_k=2).matches()
        want = [streaming.query(values, top_k=2) for values in rows_b]
        assert got == want

    def test_save_load_identical(self, tmp_path, engine, rows_b):
        reference = engine.query_batch(rows_b)
        bundle = engine.save(tmp_path / "idx")
        assert engine.snapshot.path == bundle
        loaded = QueryEngine.from_snapshot(bundle)
        _assert_identical(reference, loaded.query_batch(rows_b))

    @pytest.mark.parametrize(
        "config",
        [
            ParallelConfig(n_jobs=2, backend="process"),
            ParallelConfig(n_jobs=2, backend="thread"),
            ParallelConfig(n_jobs=3, chunk_size=17),
        ],
        ids=["process", "thread", "chunked"],
    )
    def test_parallel_identical(self, tmp_path, engine, rows_b, config):
        reference = engine.query_batch(rows_b)
        bundle = engine.save(tmp_path / "idx")
        parallel = QueryEngine.from_snapshot(bundle, parallel=config)
        _assert_identical(reference, parallel.query_batch(rows_b))
        _assert_identical(
            engine.query_batch(rows_b, top_k=1),
            parallel.query_batch(rows_b, top_k=1),
        )

    def test_in_memory_parallel_ships_snapshot_once(self, engine, rows_b):
        """A never-persisted engine still fans out (snapshot via initargs)."""
        reference = engine.query_batch(rows_b)
        snapshot = IndexSnapshot(
            encoder=engine.snapshot.encoder,
            matrix=engine.snapshot.matrix,
            lsh=engine.snapshot.lsh,
            threshold=engine.snapshot.threshold,
        )
        parallel = QueryEngine(
            snapshot, parallel=ParallelConfig(n_jobs=2, backend="process")
        )
        assert parallel.snapshot.path is None
        _assert_identical(reference, parallel.query_batch(rows_b))

    def test_threshold_override_and_empty_batch(self, engine, rows_b):
        assert engine.query_batch([]).n_queries == 0
        loose = engine.query_batch(rows_b, threshold=engine.snapshot.lsh.n_bits)
        strict = engine.query_batch(rows_b, threshold=0)
        assert loose.n_matches >= engine.query_batch(rows_b).n_matches >= strict.n_matches

    def test_rejects_thresholdless_snapshot(self, engine):
        snapshot = IndexSnapshot(
            encoder=engine.snapshot.encoder,
            matrix=engine.snapshot.matrix,
            lsh=engine.snapshot.lsh,
            threshold=None,
        )
        with pytest.raises(ValueError, match="threshold"):
            QueryEngine(snapshot)

    def test_rejects_bad_top_k(self, engine, rows_b):
        with pytest.raises(ValueError, match="top_k"):
            engine.query_batch(rows_b, top_k=0)


class TestSpawnStartMethod:
    """The process backend must be spawn-safe (regression for the
    initializer/initargs plumbing: everything shipped to workers is
    module-level and picklable)."""

    def test_query_engine_identical_under_spawn(self, tmp_path, encoder, rows_a, rows_b):
        engine = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        reference = engine.query_batch(rows_b)
        bundle = engine.save(tmp_path / "idx")
        spawned = QueryEngine.from_snapshot(
            bundle,
            parallel=ParallelConfig(n_jobs=2, backend="process", start_method="spawn"),
        )
        _assert_identical(reference, spawned.query_batch(rows_b))

    def test_linker_identical_under_spawn(self, problem):
        serial = CompactHammingLinker.record_level(threshold=4, k=30, seed=SEED)
        want = serial.link(problem.dataset_a, problem.dataset_b)
        spawned = CompactHammingLinker.record_level(
            threshold=4,
            k=30,
            seed=SEED,
            parallel=ParallelConfig(n_jobs=2, backend="process", start_method="spawn"),
        )
        got = spawned.link(problem.dataset_a, problem.dataset_b)
        assert want.matches == got.matches
        assert want.n_candidates == got.n_candidates

    def test_start_method_validated(self):
        with pytest.raises(ValueError, match="start_method"):
            ParallelConfig(start_method="teleport")
        with pytest.raises(ValueError, match="initializer"):
            ParallelConfig(initargs=(1,))


class TestLoadSnapshotStage:
    def test_pipeline_equals_full_linker(self, tmp_path, problem, encoder, rows_a):
        linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=SEED)
        linker.encoder = encoder
        want = linker.link(problem.dataset_a, problem.dataset_b)
        engine = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        bundle = engine.save(tmp_path / "idx")
        pipeline = LinkagePipeline(
            [
                LoadSnapshotStage(bundle),
                QueryEmbedStage(),
                ChunkedCandidateStage(),
                ThresholdVerifyStage(4, sort_pairs=True),
            ]
        )
        got = pipeline.run(problem.dataset_a, problem.dataset_b)
        assert want.matches == got.matches
        assert want.n_candidates == got.n_candidates
        assert "index" in got.timings and "embed" in got.timings

    def test_snapshot_exposed_in_extras_and_counters(self, tmp_path, problem, encoder, rows_a):
        engine = QueryEngine.build(rows_a, encoder, threshold=4, k=30, seed=SEED)
        bundle = engine.save(tmp_path / "idx")
        stage = LoadSnapshotStage(bundle)
        assert stage.timing == "index"
        assert stage.kind == "calibrate"


class TestGoldenParity:
    """The snapshot path reproduces the committed golden streaming run."""

    def test_snapshot_serves_golden_streaming_matches(self, tmp_path):
        golden = json.loads(GOLDEN_PATH.read_text())["streaming"]
        prob = make_problem()
        calibrator = CompactHammingLinker.record_level(
            threshold=THRESHOLD, k=K, seed=PROBLEM_SEED
        )
        enc = calibrator.calibrate(prob.dataset_a, prob.dataset_b)
        streaming = StreamingLinker(enc, threshold=THRESHOLD, k=K, seed=PROBLEM_SEED)
        for values in prob.dataset_a.value_rows():
            streaming.insert(values)
        bundle = streaming.save_snapshot(tmp_path / "idx")
        engine = QueryEngine.from_snapshot(bundle)
        result = engine.query_batch(
            [tuple(r) for r in prob.dataset_b.value_rows()]
        )
        matches = sorted(
            [int(a), int(b)] for b, a in zip(result.queries, result.ids)
        )
        assert matches == golden["matches"]
        assert len(matches) == golden["n_matches"]
