"""Tests for the flow-sensitive phase of reprolint (RL201-RL205).

Three layers mirror the implementation: the CFG builder
(:mod:`repro.analysis.cfg`) gets structural tests over exception edges,
``finally`` duplication and loop routing; the generic fixpoint solver
(:mod:`repro.analysis.dataflow`) gets toy forward/backward analyses
exercising may/must joins and the exception-edge transfer; and each
RL20x rule gets positive and negative fixtures plus one *seeded bug*
test that mutates a real in-tree file (hamming kernel, serving engine,
persistence layer) and asserts the rule catches exactly the class of
defect it was built for — proving none of the rules are vacuous against
the code they guard.
"""

import ast
import textwrap

import pytest

from repro.analysis import LintConfig, LintEngine, lint_paths, load_config
from repro.analysis.cache import LintCache, config_fingerprint
from repro.analysis.cfg import EXCEPTION, NORMAL, build_cfg, evaluated
from repro.analysis.config import RuleConfig
from repro.analysis.dataflow import BACKWARD, DataflowAnalysis, solve
from repro.analysis.engine import all_rule_ids
from repro.analysis.project import extract_module
from repro.analysis.report import render_text
from tests.test_project_lint import (
    PIPELINE_CONTEXT,
    PIPELINE_STAGE,
    REPO_ROOT,
    make_tree,
    rule_ids,
    select_rules,
)

#: Fixture paths chosen for rule scoping: RL202 only runs in the kernel
#: and serving trees; RL201/RL204/RL205 run anywhere outside tests/.
KERNEL = "src/repro/hamming/fixture.py"
SERVE = "src/repro/serve/fixture.py"


def _cfg(code):
    fn = ast.parse(textwrap.dedent(code)).body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(fn), fn


def _only(graph, pred):
    nodes = [n for n in graph.nodes if pred(n)]
    assert len(nodes) == 1, [n.label for n in nodes]
    return nodes[0]


def _assign_to(graph, name):
    return _only(
        graph,
        lambda n: isinstance(n.stmt, ast.Assign)
        and isinstance(n.stmt.targets[0], ast.Name)
        and n.stmt.targets[0].id == name,
    )


@pytest.fixture
def engine():
    return LintEngine(LintConfig())


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


class TestCFGConstruction:
    def test_linear_chain(self):
        graph, _ = _cfg(
            """
            def _f():
                a = 1
                b = 2
            """
        )
        ((a_idx, kind),) = graph.nodes[graph.entry].succs
        assert kind == NORMAL
        ((b_idx, _),) = graph.nodes[a_idx].succs
        ((end, _),) = graph.nodes[b_idx].succs
        assert end == graph.exit
        # No calls anywhere: nothing can reach the raise exit.
        assert graph.nodes[graph.raise_exit].preds == []

    def test_if_else_branches_and_merge(self):
        graph, _ = _cfg(
            """
            def _f(p):
                if p:
                    x = 1
                else:
                    x = 2
                y = x
            """
        )
        branch = _only(graph, lambda n: n.label == "branch")
        assert len(branch.succs) == 2
        merge = _assign_to(graph, "y")
        assert len(merge.preds) == 2

    def test_if_without_else_falls_through(self):
        graph, _ = _cfg(
            """
            def _f(p):
                if p:
                    x = 1
                y = 2
            """
        )
        branch = _only(graph, lambda n: n.label == "branch")
        after = _assign_to(graph, "y")
        assert (after.index, NORMAL) in graph.nodes[
            _assign_to(graph, "x").index
        ].succs
        assert (after.index, NORMAL) in branch.succs

    def test_while_loop_back_edge_and_break(self):
        graph, _ = _cfg(
            """
            def _f(n):
                i = 0
                while i < n:
                    if i == 3:
                        break
                    i = i + 1
                return i
            """
        )
        head = _only(graph, lambda n: n.label == "loop")
        # Entered from ``i = 0`` and re-entered from the increment.
        assert len(head.preds) >= 2
        brk = _only(graph, lambda n: isinstance(n.stmt, ast.Break))
        ret = _only(graph, lambda n: isinstance(n.stmt, ast.Return))
        assert brk.succs == [(ret.index, NORMAL)]

    def test_continue_returns_to_loop_head(self):
        graph, _ = _cfg(
            """
            def _f(n):
                while n:
                    if n:
                        continue
                    n = 0
            """
        )
        head = _only(graph, lambda n: n.label == "loop")
        cont = _only(graph, lambda n: isinstance(n.stmt, ast.Continue))
        assert cont.succs == [(head.index, NORMAL)]

    def test_while_true_without_break_kills_fallthrough(self):
        graph, _ = _cfg(
            """
            def _f():
                while True:
                    pass
                x = 1
            """
        )
        after = _assign_to(graph, "x")
        assert after.index not in graph.reachable()

    def test_while_true_with_break_falls_through(self):
        graph, _ = _cfg(
            """
            def _f(q):
                while True:
                    if q:
                        break
                x = 1
            """
        )
        after = _assign_to(graph, "x")
        assert after.index in graph.reachable()

    def test_call_statement_gets_exception_edge(self):
        graph, _ = _cfg(
            """
            def _f(p):
                data = load(p)
                return data
            """
        )
        call = _assign_to(graph, "data")
        assert (graph.raise_exit, EXCEPTION) in call.succs

    def test_try_except_routes_exception_to_dispatch(self):
        graph, _ = _cfg(
            """
            def _f(p):
                try:
                    data = load(p)
                except ValueError:
                    data = None
                return data
            """
        )
        dispatch = _only(graph, lambda n: n.label == "except-dispatch")
        body = [n for n in graph.nodes if isinstance(n.stmt, ast.Assign)][0]
        assert (dispatch.index, EXCEPTION) in body.succs
        # ValueError is not catch-all: an unmatched exception still
        # escapes the function.
        assert (graph.raise_exit, EXCEPTION) in dispatch.succs

    def test_catch_all_handler_stops_propagation(self):
        graph, _ = _cfg(
            """
            def _f(p):
                try:
                    data = load(p)
                except Exception:
                    data = None
                return data
            """
        )
        assert graph.nodes[graph.raise_exit].preds == []

    def test_finally_body_duplicated_per_continuation(self):
        graph, fn = _cfg(
            """
            def _f(p):
                fh = acquire(p)
                try:
                    return fh.read()
                finally:
                    fh.close()
            """
        )
        close_stmt = fn.body[1].finalbody[0]
        copies = [n for n in graph.nodes if n.stmt is close_stmt]
        # One copy on the return path, one on the exception path of the
        # returned expression (at least).
        assert len(copies) >= 2
        assert graph.exit in graph.reachable()
        assert graph.raise_exit in graph.reachable()

    def test_evaluated_header_excludes_body(self):
        graph, fn = _cfg(
            """
            def _f(p):
                if p(1):
                    x = p(2)
            """
        )
        branch = _only(graph, lambda n: n.label == "branch")
        assert evaluated(branch) == (fn.body[0].test,)
        body_stmt = _assign_to(graph, "x")
        assert evaluated(body_stmt) == (body_stmt.stmt,)
        assert evaluated(graph.nodes[graph.entry]) == ()


# ---------------------------------------------------------------------------
# Dataflow solver
# ---------------------------------------------------------------------------


def _stored_names(node):
    names = set()
    for part in evaluated(node):
        for sub in ast.walk(part):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                names.add(sub.id)
    return frozenset(names)


class _MayDefined(DataflowAnalysis):
    def boundary(self):
        return frozenset()

    def join(self, states):
        out = states[0]
        for state in states[1:]:
            out = out | state
        return out

    def transfer(self, node, state):
        return state | _stored_names(node)


class _MustDefined(_MayDefined):
    def join(self, states):
        out = states[0]
        for state in states[1:]:
            out = out & state
        return out


class _DefinedNoExc(_MayDefined):
    def transfer_exception(self, node, state):
        return state  # a raising statement never completes its store


class _LiveNames(DataflowAnalysis):
    direction = BACKWARD

    def boundary(self):
        return frozenset()

    def join(self, states):
        out = states[0]
        for state in states[1:]:
            out = out | state
        return out

    def transfer(self, node, out):
        loads = set()
        for part in evaluated(node):
            for sub in ast.walk(part):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    loads.add(sub.id)
        return (out - _stored_names(node)) | frozenset(loads)


BRANCHY = """
    def _f(p):
        if p:
            a = 1
        else:
            b = 2
        c = 3
"""


class TestDataflowSolver:
    def test_forward_may_union_at_merge(self):
        graph, _ = _cfg(BRANCHY)
        states = solve(graph, _MayDefined())
        merge = _assign_to(graph, "c")
        assert states[merge.index] == frozenset({"a", "b"})

    def test_forward_must_intersection_at_merge(self):
        graph, _ = _cfg(BRANCHY)
        states = solve(graph, _MustDefined())
        merge = _assign_to(graph, "c")
        assert states[merge.index] == frozenset()

    def test_exception_transfer_drops_incomplete_store(self):
        graph, _ = _cfg(
            """
            def _f(p):
                x = load(p)
                return x
            """
        )
        states = solve(graph, _DefinedNoExc())
        ret = _only(graph, lambda n: isinstance(n.stmt, ast.Return))
        assert states[ret.index] == frozenset({"x"})
        assert states[graph.raise_exit] == frozenset()

    def test_backward_liveness(self):
        graph, _ = _cfg(
            """
            def _f():
                a = 1
                b = 2
                return a
            """
        )
        states = solve(graph, _LiveNames())
        # ``a`` is live after both assignments (read by the return) and
        # dead before its own definition.
        assert states[_assign_to(graph, "a").index] == frozenset({"a"})
        assert states[_assign_to(graph, "b").index] == frozenset({"a"})
        assert states[graph.entry] == frozenset()

    def test_unreachable_nodes_have_no_state(self):
        graph, _ = _cfg(
            """
            def _f():
                return 1
                x = 2
            """
        )
        states = solve(graph, _MayDefined())
        assert _assign_to(graph, "x").index not in states

    def test_unknown_direction_rejected(self):
        graph, _ = _cfg("def _f():\n    pass\n")
        analysis = _MayDefined()
        analysis.direction = "sideways"
        with pytest.raises(ValueError):
            solve(graph, analysis)


# ---------------------------------------------------------------------------
# RL201 resource lifetime
# ---------------------------------------------------------------------------


class TestRL201ResourceLifetime:
    def test_branch_leak_triggers(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(path, flag):
                    fh = open(path)
                    if flag:
                        fh.close()
                    return None
                """
            ),
        )
        assert rule_ids(findings) == ["RL201"]
        assert "not closed on every path" in findings[0].message
        assert findings[0].line == 3

    def test_exception_path_leak_triggers(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(path):
                    fh = open(path)
                    data = fh.read()
                    fh.close()
                    return data
                """
            ),
        )
        assert rule_ids(findings) == ["RL201"]
        assert "exception escapes" in findings[0].message

    def test_discarded_acquisition_triggers(self, engine):
        findings = engine.lint_source(
            SERVE, "def _f(path):\n    open(path)\n    return None\n"
        )
        assert rule_ids(findings) == ["RL201"]
        assert "immediately discarded" in findings[0].message

    def test_with_statement_is_clean(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(path):
                    with open(path) as fh:
                        return fh.read()
                """
            ),
        )
        assert findings == []

    def test_try_finally_close_is_clean(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(path):
                    fh = open(path)
                    try:
                        return fh.read()
                    finally:
                        fh.close()
                """
            ),
        )
        assert findings == []

    def test_returned_handle_transfers_ownership(self, engine):
        findings = engine.lint_source(
            SERVE, "def _f(path):\n    fh = open(path)\n    return fh\n"
        )
        assert findings == []

    def test_handle_passed_to_callee_is_clean(self, engine):
        findings = engine.lint_source(
            SERVE,
            "def _f(path, sink):\n    fh = open(path)\n    sink(fh)\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL202 dtype discipline
# ---------------------------------------------------------------------------


class TestRL202DtypeDiscipline:
    def test_mixed_width_bitwise_triggers(self, engine):
        findings = engine.lint_source(
            KERNEL,
            textwrap.dedent(
                """
                import numpy as np

                def _kernel(a, b):
                    x = np.asarray(a, dtype=np.uint64)
                    y = np.asarray(b, dtype=np.int32)
                    return x ^ y
                """
            ),
        )
        assert rule_ids(findings) == ["RL202"]
        assert "bitwise" in findings[0].message

    def test_unsigned_signed_arithmetic_triggers(self, engine):
        findings = engine.lint_source(
            KERNEL,
            textwrap.dedent(
                """
                import numpy as np

                def _kernel(a):
                    x = np.asarray(a, dtype=np.uint64)
                    y = x + np.int64(1)
                    return y
                """
            ),
        )
        assert rule_ids(findings) == ["RL202"]
        assert "float64" in findings[0].message

    def test_true_division_on_unsigned_triggers(self, engine):
        findings = engine.lint_source(
            KERNEL,
            textwrap.dedent(
                """
                import numpy as np

                def _kernel(a):
                    x = np.asarray(a, dtype=np.uint64)
                    return x / 2
                """
            ),
        )
        assert rule_ids(findings) == ["RL202"]
        assert "division" in findings[0].message

    def test_matching_dtypes_are_clean(self, engine):
        findings = engine.lint_source(
            KERNEL,
            textwrap.dedent(
                """
                import numpy as np

                def _kernel(a, b):
                    x = np.asarray(a, dtype=np.uint64)
                    y = np.asarray(b, dtype=np.uint64)
                    z = x ^ y
                    return z // 2
                """
            ),
        )
        assert findings == []

    def test_rebinding_on_all_paths_is_tracked(self, engine):
        findings = engine.lint_source(
            KERNEL,
            textwrap.dedent(
                """
                import numpy as np

                def _kernel(a):
                    x = np.asarray(a, dtype=np.uint64)
                    x = x.astype(np.int32)
                    return x ^ np.uint64(1)
                """
            ),
        )
        assert rule_ids(findings) == ["RL202"]

    def test_disagreeing_branches_stay_silent(self, engine):
        findings = engine.lint_source(
            KERNEL,
            textwrap.dedent(
                """
                import numpy as np

                def _kernel(a, flag):
                    x = np.asarray(a, dtype=np.uint64)
                    if flag:
                        x = x.astype(np.int64)
                    return x ^ np.uint64(1)
                """
            ),
        )
        assert findings == []

    def test_scoped_out_of_non_kernel_modules(self, engine):
        findings = engine.lint_source(
            "src/repro/data/fixture.py",
            textwrap.dedent(
                """
                import numpy as np

                def _helper(a, b):
                    x = np.asarray(a, dtype=np.uint64)
                    y = np.asarray(b, dtype=np.int32)
                    return x ^ y
                """
            ),
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL204 exception hygiene
# ---------------------------------------------------------------------------


class TestRL204ExceptionHygiene:
    def test_broad_handler_swallows_snapshot_error(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(path):
                    try:
                        snap = load_index_snapshot(path)
                    except Exception:
                        snap = None
                    return snap
                """
            ),
        )
        assert rule_ids(findings) == ["RL204"]
        assert "SnapshotError" in findings[0].message

    def test_explicit_snapshot_handler_first_is_clean(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(path):
                    try:
                        snap = load_index_snapshot(path)
                    except SnapshotError:
                        raise
                    except Exception:
                        snap = None
                    return snap
                """
            ),
        )
        assert findings == []

    def test_reraising_broad_handler_is_clean(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(path, log):
                    try:
                        snap = load_index_snapshot(path)
                    except Exception:
                        log("load failed")
                        raise
                    return snap
                """
            ),
        )
        assert findings == []

    def test_try_without_snapshot_io_is_clean(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(payload):
                    try:
                        value = int(payload)
                    except Exception:
                        value = 0
                    return value
                """
            ),
        )
        assert findings == []

    def test_unreachable_statement_triggers(self, engine):
        findings = engine.lint_source(
            SERVE,
            "def _f(p, cleanup):\n    return p\n    cleanup(p)\n",
        )
        assert rule_ids(findings) == ["RL204"]
        assert "unreachable" in findings[0].message
        assert findings[0].line == 3

    def test_only_first_of_dead_run_reported(self, engine):
        findings = engine.lint_source(
            SERVE,
            "def _f(p):\n    return p\n    a = 1\n    b = 2\n    return b\n",
        )
        assert rule_ids(findings) == ["RL204"]
        assert findings[0].line == 3

    def test_merging_branches_are_reachable(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(p):
                    if p:
                        return 1
                    return 2
                """
            ),
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL205 spawn safety
# ---------------------------------------------------------------------------


class TestRL205SpawnSafety:
    def test_inline_lambda_initializer_triggers(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(worker, tasks, cfg):
                    return parallel_map(worker, tasks, cfg, initializer=lambda: None)
                """
            ),
        )
        assert rule_ids(findings) == ["RL205"]
        assert "lambda" in findings[0].message

    def test_nested_def_initializer_triggers(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(worker, tasks, cfg):
                    def init():
                        pass
                    return parallel_map(worker, tasks, cfg, initializer=init)
                """
            ),
        )
        assert rule_ids(findings) == ["RL205"]
        assert "nested def" in findings[0].message

    def test_generator_initarg_triggers(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(rows, setup):
                    return ParallelConfig(
                        n_jobs=2, initializer=setup, initargs=((r for r in rows),)
                    )
                """
            ),
        )
        assert rule_ids(findings) == ["RL205"]
        assert "generator expression" in findings[0].message

    def test_name_bound_to_lambda_triggers(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(worker, tasks, cfg):
                    init = lambda: None
                    return parallel_map(worker, tasks, cfg, initializer=init)
                """
            ),
        )
        assert rule_ids(findings) == ["RL205"]
        assert "bound to a lambda" in findings[0].message

    def test_rebound_name_is_clean(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(worker, tasks, cfg):
                    init = lambda: None
                    init = _module_init
                    return parallel_map(worker, tasks, cfg, initializer=init)
                """
            ),
        )
        assert findings == []

    def test_disagreeing_branches_stay_silent(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(worker, tasks, cfg, flag):
                    init = lambda: None
                    if flag:
                        init = _module_init
                    return parallel_map(worker, tasks, cfg, initializer=init)
                """
            ),
        )
        assert findings == []

    def test_module_level_initializer_is_clean(self, engine):
        findings = engine.lint_source(
            SERVE,
            textwrap.dedent(
                """
                def _f(worker, tasks, cfg, payload):
                    return parallel_map(
                        worker, tasks, cfg,
                        initializer=_module_init, initargs=(payload,),
                    )
                """
            ),
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL203 conditional ctx writes (project phase)
# ---------------------------------------------------------------------------

_PACKAGE_FILES = {
    "src/repro/__init__.py": "",
    "src/repro/pipeline/__init__.py": "",
    "src/repro/pipeline/stage.py": PIPELINE_STAGE,
    "src/repro/pipeline/context.py": PIPELINE_CONTEXT,
    "src/repro/linkers/__init__.py": "",
}


class TestRL203CtxRefinement:
    def test_conditional_write_before_read_triggers(self, tmp_path):
        make_tree(
            tmp_path,
            {
                **_PACKAGE_FILES,
                "src/repro/linkers/cand.py": """
                    from repro.pipeline.stage import CandidateStage

                    class PairStage(CandidateStage):
                        def run(self, ctx):
                            if ctx.parallel is not None:
                                ctx.cand_a = self._pairs(ctx)
                            total = len(ctx.cand_a)
                            return total

                        def _pairs(self, ctx):
                            return []
                """,
            },
        )
        findings = lint_paths([tmp_path], select_rules("RL203"))
        assert rule_ids(findings) == ["RL203"]
        assert "ctx.cand_a" in findings[0].message
        assert findings[0].line == 8

    def test_unconditional_write_is_clean(self, tmp_path):
        make_tree(
            tmp_path,
            {
                **_PACKAGE_FILES,
                "src/repro/linkers/cand.py": """
                    from repro.pipeline.stage import CandidateStage

                    class PairStage(CandidateStage):
                        def run(self, ctx):
                            ctx.cand_a = self._pairs(ctx)
                            total = len(ctx.cand_a)
                            return total

                        def _pairs(self, ctx):
                            return []
                """,
            },
        )
        assert lint_paths([tmp_path], select_rules("RL203")) == []

    def test_earlier_stage_write_legalises_conditional_override(self, tmp_path):
        make_tree(
            tmp_path,
            {
                **_PACKAGE_FILES,
                "src/repro/linkers/block.py": """
                    from repro.pipeline.stage import BlockStage

                    class SeedCandidates(BlockStage):
                        def run(self, ctx):
                            ctx.cand_a = []
                """,
                "src/repro/linkers/cand.py": """
                    from repro.pipeline.stage import CandidateStage

                    class PairStage(CandidateStage):
                        def run(self, ctx):
                            if ctx.parallel is not None:
                                ctx.cand_a = self._pairs(ctx)
                            total = len(ctx.cand_a)
                            return total

                        def _pairs(self, ctx):
                            return []
                """,
            },
        )
        assert lint_paths([tmp_path], select_rules("RL203")) == []

    def test_read_hoisted_under_same_condition_is_clean(self, tmp_path):
        make_tree(
            tmp_path,
            {
                **_PACKAGE_FILES,
                "src/repro/linkers/cand.py": """
                    from repro.pipeline.stage import CandidateStage

                    class PairStage(CandidateStage):
                        def run(self, ctx):
                            if ctx.parallel is not None:
                                ctx.cand_a = self._pairs(ctx)
                                total = len(ctx.cand_a)
                                return total
                            return 0

                        def _pairs(self, ctx):
                            return []
                """,
            },
        )
        assert lint_paths([tmp_path], select_rules("RL203")) == []

    def test_helper_write_counts_via_transitive_facts(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def fill(ctx):
                    ctx.cand_a = []

                def run(ctx):
                    fill(ctx)
                    return len(ctx.cand_a)
                """
            )
        )
        summary = extract_module("repro.mod", "src/repro/mod.py", tree)
        assert summary.functions["run"].ctx_maybe_unset == {}

    def test_conditional_write_recorded_in_summary(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def run(ctx):
                    if ctx.parallel:
                        ctx.cand_a = []
                    return len(ctx.cand_a)
                """
            )
        )
        summary = extract_module("repro.mod", "src/repro/mod.py", tree)
        # Raw extractor facts: the never-written ``parallel`` read is
        # recorded too — RL203 filters runner-provided attributes later.
        assert summary.functions["run"].ctx_maybe_unset == {
            "cand_a": 5,
            "parallel": 3,
        }


# ---------------------------------------------------------------------------
# Engine integration: scoping, severity, suppression, cache
# ---------------------------------------------------------------------------

_LEAKY = "def _f(path):\n    fh = open(path)\n    return None\n"


class TestFlowEngineIntegration:
    def test_suppression_comment_silences_flow_rule(self, engine):
        source = (
            "def _f(path):\n"
            "    fh = open(path)  # reprolint: disable=RL201\n"
            "    return None\n"
        )
        assert engine.lint_source(SERVE, source) == []

    def test_severity_config_applies_to_flow_rules(self):
        config = LintConfig(
            select=("RL201",),
            rule_configs={"RL201": RuleConfig(severity="warn")},
        )
        findings = LintEngine(config).lint_source(SERVE, _LEAKY)
        assert [f.severity for f in findings] == ["warn"]

    def test_select_restricts_flow_rules(self):
        config = LintConfig(select=("RL204",))
        assert LintEngine(config).lint_source(SERVE, _LEAKY) == []

    def test_flow_findings_replay_from_cache(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text(_LEAKY)
        config = LintConfig()
        fingerprint = config_fingerprint(config, sorted(all_rule_ids()))

        def cache():
            return LintCache.load(tmp_path / "cache.json", fingerprint)

        cold_stats, warm_stats = {}, {}
        cold = lint_paths([target], config, cache=cache(), stats=cold_stats)
        warm = lint_paths([target], config, cache=cache(), stats=warm_stats)
        assert rule_ids(cold) == ["RL201"]
        assert warm == cold
        assert warm_stats["parsed"] == 0 and warm_stats["cache_hits"] == 1


# ---------------------------------------------------------------------------
# Seeded bugs in the real tree
# ---------------------------------------------------------------------------


class TestSeededBugs:
    """Mutate real in-tree files and assert each rule catches its bug.

    The unmodified file must lint clean under the shipped configuration
    (self-hosting) and the one-line mutation must produce exactly the
    expected rule — evidence the rules bite on the code they guard, not
    just on synthetic fixtures.
    """

    def _mutate(self, rel, old, new):
        source = (REPO_ROOT / rel).read_text(encoding="utf-8")
        assert old in source, f"seed anchor missing from {rel}"
        engine = LintEngine(load_config(REPO_ROOT / "pyproject.toml"))
        clean = engine.lint_source(rel, source)
        assert clean == [], render_text(clean)
        return engine.lint_source(rel, source.replace(old, new, 1))

    def test_rl201_unclosed_manifest_handle(self):
        findings = self._mutate(
            "src/repro/core/persist.py",
            '        manifest = json.loads(manifest_file.read_text(encoding="utf-8"))',
            '        fh = open(manifest_file, encoding="utf-8")\n'
            "        manifest = json.loads(fh.read())",
        )
        assert "RL201" in rule_ids(findings)

    def test_rl202_mixed_width_xor_in_kernel(self):
        findings = self._mutate(
            "src/repro/hamming/distance.py",
            "^ np.asarray(words_b, dtype=np.uint64)",
            "^ np.asarray(words_b, dtype=np.int32)",
        )
        assert "RL202" in rule_ids(findings)

    def test_rl204_swallowed_snapshot_error(self):
        findings = self._mutate(
            "src/repro/serve/engine.py",
            "        snapshot = load_index_snapshot(path, mmap_mode=mmap_mode)\n"
            "        return cls(snapshot, parallel=parallel, mmap_mode=mmap_mode, "
            "verify=verify)",
            "        try:\n"
            "            snapshot = load_index_snapshot(path, mmap_mode=mmap_mode)\n"
            "        except Exception:\n"
            "            snapshot = None\n"
            "        return cls(snapshot, parallel=parallel, mmap_mode=mmap_mode, "
            "verify=verify)",
        )
        assert "RL204" in rule_ids(findings)

    def test_rl205_lambda_initializer_in_engine(self):
        findings = self._mutate(
            "src/repro/serve/engine.py",
            "initializer=_init_query_worker,",
            "initializer=lambda s, m: None,",
        )
        assert "RL205" in rule_ids(findings)


# ---------------------------------------------------------------------------
# Self-hosting: the whole tree stays clean with every rule enabled
# ---------------------------------------------------------------------------


class TestSelfHosting:
    def test_tests_and_benchmarks_lint_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths(
            [REPO_ROOT / "tests", REPO_ROOT / "benchmarks"], config
        )
        assert findings == [], render_text(findings)
