"""Tests for repro.core.qgram — Algorithm 1 and q-gram vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qgram import (
    QGramScheme,
    qgram_from_index,
    qgram_index,
    qgram_index_set,
    qgram_vector,
    qgrams,
    record_qgram_vector,
)
from repro.text.alphabet import Alphabet, AlphabetError

UPPER = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ", min_size=0, max_size=15)


class TestQGrams:
    def test_bigrams_of_john(self):
        assert qgrams("JOHN") == ["JO", "OH", "HN"]

    def test_padded_bigrams(self):
        assert qgrams("JOHN", padded=True) == ["_J", "JO", "OH", "HN", "N_"]

    def test_too_short_string(self):
        assert qgrams("A") == []
        assert qgrams("", padded=True) == []

    def test_unigrams(self):
        assert qgrams("ABC", q=1) == ["A", "B", "C"]

    def test_trigram_padding(self):
        grams = qgrams("AB", q=3, padded=True)
        assert grams[0] == "__A"
        assert grams[-1] == "B__"

    @given(UPPER, st.integers(min_value=1, max_value=4))
    def test_count_formula(self, s, q):
        assert len(qgrams(s, q)) == max(0, len(s) - q + 1)


class TestAlgorithm1:
    def test_paper_figure_1(self):
        # F('JO') = 248, F('OH') = 371, F('HN') = 195.
        assert qgram_index("JO") == 248
        assert qgram_index("OH") == 371
        assert qgram_index("HN") == 195

    def test_john_index_set(self):
        assert sorted(qgram_index_set("JOHN")) == [195, 248, 371]

    def test_boundaries(self):
        assert qgram_index("AA") == 0
        assert qgram_index("ZZ") == 675

    def test_inverse(self):
        assert qgram_from_index(248, 2) == "JO"

    @given(st.integers(min_value=0, max_value=675))
    def test_bijection(self, index):
        assert qgram_index(qgram_from_index(index, 2)) == index

    def test_empty_gram_rejected(self):
        with pytest.raises(ValueError):
            qgram_index("")

    def test_unknown_character_rejected(self):
        with pytest.raises(AlphabetError):
            qgram_index("a!")

    def test_index_out_of_space(self):
        with pytest.raises(ValueError):
            qgram_from_index(676, 2)

    def test_custom_alphabet(self):
        abc = Alphabet("AB")
        assert qgram_index("BB", abc) == 3
        assert qgram_from_index(3, 2, abc) == "BB"


class TestScheme:
    def test_space_size(self):
        assert QGramScheme().space_size == 676

    def test_padded_requires_pad_in_alphabet(self):
        with pytest.raises(ValueError, match="padding char"):
            QGramScheme(padded=True)  # default alphabet lacks '_'

    def test_padded_with_proper_alphabet(self):
        scheme = QGramScheme(alphabet=Alphabet.uppercase_padded(), padded=True)
        assert len(scheme.index_set("JOHN")) == 5

    def test_count_includes_padding(self):
        plain = QGramScheme()
        padded = QGramScheme(alphabet=Alphabet.uppercase_padded(), padded=True)
        assert plain.count("JONES") == 4
        assert padded.count("JONES") == 6

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramScheme(q=0)


class TestVectors:
    def test_vector_width_is_space_size(self):
        assert qgram_vector("JOHN").n_bits == 676

    def test_vector_sets_exactly_index_set(self):
        v = qgram_vector("JOHN")
        assert set(v.indices()) == set(qgram_index_set("JOHN"))

    def test_repeated_grams_collapse(self):
        # 'AAA' yields bigram 'AA' twice but one set position.
        assert qgram_vector("AAA").count() == 1

    def test_record_vector_concatenates(self):
        v = record_qgram_vector(["AB", "CD"])
        assert v.n_bits == 2 * 676
        assert v.count() == 2

    def test_record_vector_rejects_empty(self):
        with pytest.raises(ValueError):
            record_qgram_vector([])


class TestPaperDistanceCorrespondence:
    """Section 5.1: types of errors in E map to bounded distances in H."""

    def test_substitution_jones_jonas(self):
        v1, v2 = qgram_vector("JONES"), qgram_vector("JONAS")
        assert v1.hamming(v2) == 4

    def test_substitution_with_overlap_shannen(self):
        v1, v2 = qgram_vector("SHANNEN"), qgram_vector("SHENNEN")
        assert v1.hamming(v2) == 3

    def test_delete_jones_jons(self):
        v1, v2 = qgram_vector("JONES"), qgram_vector("JONS")
        assert v1.hamming(v2) == 3

    def test_insert_jones_joneas(self):
        v1, v2 = qgram_vector("JONES"), qgram_vector("JONEAS")
        assert v1.hamming(v2) == 3

    @given(UPPER.filter(lambda s: len(s) >= 3), st.integers(0, 25), st.data())
    @settings(max_examples=100)
    def test_substitution_bound_alpha_4(self, s, letter, data):
        """One substitution moves Hamming distance by at most 4 (q=2)."""
        pos = data.draw(st.integers(0, len(s) - 1))
        new_char = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"[letter]
        perturbed = s[:pos] + new_char + s[pos + 1 :]
        assert qgram_vector(s).hamming(qgram_vector(perturbed)) <= 4

    @given(UPPER.filter(lambda s: len(s) >= 3), st.data())
    @settings(max_examples=100)
    def test_delete_bound_alpha_3(self, s, data):
        """One deletion moves Hamming distance by at most 3 (q=2)."""
        pos = data.draw(st.integers(0, len(s) - 1))
        perturbed = s[:pos] + s[pos + 1 :]
        assert qgram_vector(s).hamming(qgram_vector(perturbed)) <= 3

    def test_length_independence(self):
        """Unlike Jaccard, the Hamming distance of one substitution does not
        depend on string length (paper's WASHINGTON example)."""
        short = qgram_vector("JONES").hamming(qgram_vector("JONAS"))
        long = qgram_vector("WASHINGTON").hamming(qgram_vector("WASHANGTON"))
        assert short == long == 4
