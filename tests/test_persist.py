"""Tests for repro.core.persist — encoder serialisation."""

import json

import pytest

from repro.core.cvector import CVectorEncoder
from repro.core.encoder import RecordEncoder
from repro.core.persist import (
    encoder_from_dict,
    encoder_to_dict,
    load_encoder,
    save_encoder,
    scheme_from_dict,
    scheme_to_dict,
)
from repro.core.qgram import QGramScheme
from repro.data.generators import EXPERIMENT_SCHEME
from repro.text.alphabet import Alphabet


@pytest.fixture
def encoder():
    return RecordEncoder(
        [
            CVectorEncoder(15, scheme=EXPERIMENT_SCHEME, seed=1),
            CVectorEncoder(68, scheme=EXPERIMENT_SCHEME, seed=2),
        ],
        names=["FirstName", "Address"],
    )


class TestSchemeRoundTrip:
    def test_default_scheme(self):
        scheme = QGramScheme()
        assert scheme_from_dict(scheme_to_dict(scheme)) == scheme

    def test_padded_trigram_scheme(self):
        scheme = QGramScheme(q=3, alphabet=Alphabet.uppercase_padded(), padded=True)
        loaded = scheme_from_dict(scheme_to_dict(scheme))
        assert loaded.q == 3
        assert loaded.padded
        assert loaded.index_set("JOHN") == scheme.index_set("JOHN")


class TestEncoderRoundTrip:
    def test_dict_round_trip_bit_identical(self, encoder):
        loaded = encoder_from_dict(encoder_to_dict(encoder))
        record = ("JONES", "12 MAIN ST APT 4")
        assert loaded.encode(record) == encoder.encode(record)
        assert loaded.total_bits == encoder.total_bits
        assert [l.name for l in loaded.layouts] == ["FirstName", "Address"]

    def test_file_round_trip(self, encoder, tmp_path):
        path = tmp_path / "encoder.json"
        save_encoder(encoder, path)
        loaded = load_encoder(path)
        record = ("MARIA", "99 OAK AVE")
        assert loaded.encode(record) == encoder.encode(record)

    def test_file_is_plain_json(self, encoder, tmp_path):
        path = tmp_path / "encoder.json"
        save_encoder(encoder, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert len(data["attributes"]) == 2

    def test_version_checked(self, encoder):
        data = encoder_to_dict(encoder)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            encoder_from_dict(data)

    def test_empty_attributes_rejected(self):
        with pytest.raises(ValueError, match="no attributes"):
            encoder_from_dict({"format_version": 1, "attributes": []})

    def test_calibrated_encoder_survives(self, tmp_path):
        from repro.data import NCVRGenerator

        rows = NCVRGenerator().generate(200, seed=5).value_rows()
        original = RecordEncoder.calibrated(rows, scheme=EXPERIMENT_SCHEME, seed=5)
        path = tmp_path / "enc.json"
        save_encoder(original, path)
        loaded = load_encoder(path)
        matrix_original = original.encode_dataset(rows[:20])
        matrix_loaded = loaded.encode_dataset(rows[:20])
        assert matrix_original == matrix_loaded
