"""Shared fixtures: small calibrated encoders and linkage problems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cvector import CVectorEncoder
from repro.core.encoder import RecordEncoder
from repro.core.qgram import QGramScheme
from repro.data import (
    NCVRGenerator,
    build_linkage_problem,
    scheme_ph,
    scheme_pl,
)
from repro.text.alphabet import TEXT_ALPHABET


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def ncvr_encoder() -> RecordEncoder:
    """A fixed-size encoder using the paper's Table 3 NCVR widths.

    Uses the letters+digits+blank alphabet so address-like values encode.
    """
    scheme = QGramScheme(alphabet=TEXT_ALPHABET)
    return RecordEncoder(
        [
            CVectorEncoder(15, scheme=scheme, seed=10),
            CVectorEncoder(15, scheme=scheme, seed=11),
            CVectorEncoder(68, scheme=scheme, seed=12),
            CVectorEncoder(22, scheme=scheme, seed=13),
        ],
        names=["f1", "f2", "f3", "f4"],
    )


@pytest.fixture(scope="session")
def small_pl_problem():
    """A small PL linkage problem reused across integration tests."""
    return build_linkage_problem(NCVRGenerator(), 400, scheme_pl(), seed=99)


@pytest.fixture(scope="session")
def small_ph_problem():
    """A small PH linkage problem reused across integration tests."""
    return build_linkage_problem(NCVRGenerator(), 400, scheme_ph(), seed=98)
