"""Tests for repro.rules.ast."""

import numpy as np
import pytest

from repro.rules.ast import And, Comparison, Not, Or, RuleError, comparison, conjunction


class TestComparison:
    def test_scalar_evaluation(self):
        cmp = Comparison("f1", 4)
        assert cmp.evaluate({"f1": 4}) is True
        assert cmp.evaluate({"f1": 5}) is False

    def test_vectorised_evaluation(self):
        cmp = Comparison("f1", 4)
        result = cmp.evaluate({"f1": np.asarray([0, 4, 5])})
        assert result.tolist() == [True, True, False]

    def test_missing_attribute(self):
        with pytest.raises(RuleError, match="no distance"):
            Comparison("f1", 4).evaluate({"f2": 1})

    def test_validation(self):
        with pytest.raises(RuleError):
            Comparison("", 4)
        with pytest.raises(RuleError):
            Comparison("f1", -1)

    def test_str(self):
        assert str(Comparison("f1", 4)) == "(f1 <= 4)"
        assert str(Comparison("f1", 4.5)) == "(f1 <= 4.5)"


class TestBooleanNodes:
    def test_and_all_must_hold(self):
        rule = And([Comparison("f1", 4), Comparison("f2", 8)])
        assert rule.evaluate({"f1": 4, "f2": 8})
        assert not rule.evaluate({"f1": 5, "f2": 8})

    def test_or_any_may_hold(self):
        rule = Or([Comparison("f1", 4), Comparison("f2", 8)])
        assert rule.evaluate({"f1": 99, "f2": 8})
        assert not rule.evaluate({"f1": 99, "f2": 99})

    def test_not_inverts(self):
        rule = Not(Comparison("f1", 4))
        assert rule.evaluate({"f1": 5})
        assert not rule.evaluate({"f1": 4})

    def test_vectorised_compound(self):
        rule = And([Comparison("f1", 4), Not(Comparison("f2", 2))])
        result = rule.evaluate(
            {"f1": np.asarray([1, 1, 9]), "f2": np.asarray([5, 1, 5])}
        )
        assert result.tolist() == [True, False, False]

    def test_binary_arity_enforced(self):
        with pytest.raises(RuleError):
            And([Comparison("f1", 4)])
        with pytest.raises(RuleError):
            Or([])

    def test_operator_overloads(self):
        rule = (comparison("f1", 4) & comparison("f2", 8)) | ~comparison("f3", 2)
        assert isinstance(rule, Or)
        assert rule.evaluate({"f1": 9, "f2": 9, "f3": 3})


class TestIntrospection:
    def test_attributes_collected(self):
        rule = And([Comparison("f1", 4), Or([Comparison("f2", 1), Not(Comparison("f3", 2))])])
        assert rule.attributes() == {"f1", "f2", "f3"}

    def test_comparisons_in_order(self):
        rule = And([Comparison("f1", 4), Comparison("f2", 8)])
        assert [c.attribute for c in rule.comparisons()] == ["f1", "f2"]

    def test_paper_rule_strings(self):
        c1 = And([Comparison("f1", 4), Comparison("f2", 4), Comparison("f3", 8)])
        assert str(c1) == "[(f1 <= 4) & (f2 <= 4) & (f3 <= 8)]"
        c3 = And([Comparison("f1", 4), Not(Comparison("f2", 4))])
        assert str(c3) == "[(f1 <= 4) & !(f2 <= 4)]"


class TestConjunctionHelper:
    def test_single(self):
        rule = conjunction({"f1": 4})
        assert isinstance(rule, Comparison)

    def test_multiple(self):
        rule = conjunction({"f1": 4, "f2": 8})
        assert isinstance(rule, And)
        assert len(rule.children) == 2

    def test_empty_rejected(self):
        with pytest.raises(RuleError):
            conjunction({})
