"""Scaling behaviour of cBV-HB with dataset size.

The paper's motivation is 1M-record datasets; this benchmark sweeps the
dataset size and verifies the scaling *shape* that makes HB viable there:
total run time grows near-linearly (each record is hashed into L buckets;
candidate verification stays a small multiple of the true-match count),
while the naive comparison space grows quadratically.
"""

import time

from common import GENERATORS, scaled

from repro.core.linker import CompactHammingLinker
from repro.data import build_linkage_problem, scheme_pl
from repro.evaluation.metrics import evaluate_linkage
from repro.evaluation.reporting import banner, format_table

SIZES = (500, 1000, 2000, 4000)


def _run(n: int, seed: int = 5):
    problem = build_linkage_problem(GENERATORS["ncvr"](), n, scheme_pl(), seed=seed)
    linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=seed)
    start = time.perf_counter()
    result = linker.link(problem.dataset_a, problem.dataset_b)
    elapsed = time.perf_counter() - start
    quality = evaluate_linkage(
        result.matches, problem.true_matches, result.n_candidates,
        problem.comparison_space,
    )
    return elapsed, quality


def test_scaling_with_dataset_size(benchmark, report):
    benchmark.pedantic(lambda: _run(scaled(1000)), rounds=1, iterations=1)
    rows = []
    times = {}
    candidates = {}
    for n in SIZES:
        size = scaled(n)
        elapsed, quality = _run(size)
        times[n] = elapsed
        candidates[n] = quality.n_candidates
        rows.append(
            [
                size,
                round(elapsed, 3),
                round(elapsed / size * 1e3, 3),
                quality.n_candidates,
                round(quality.pairs_completeness, 3),
            ]
        )
    report(
        banner("Scaling — cBV-HB run time vs dataset size (NCVR, PL)")
        + "\n"
        + format_table(["n per side", "time (s)", "ms/record", "candidates", "PC"], rows)
        + "\nshape: near-linear time and candidate growth (the comparison space"
        "\ngrows 64x across this sweep; HB's candidates grow ~8x)."
    )
    # 8x more records should cost well under the 64x a quadratic method pays.
    growth = times[SIZES[-1]] / max(times[SIZES[0]], 1e-9)
    assert growth < 40
    candidate_growth = candidates[SIZES[-1]] / max(candidates[SIZES[0]], 1)
    assert candidate_growth < 32
    # Completeness holds at every size.
    for row in rows:
        assert row[-1] >= 0.93
