"""Figure 9 — Pairs Completeness of all four methods.

Grid: {cBV-HB, HARRA, BfH, SM-EB} x {NCVR, DBLP} x {PL, PH}.  Expected
shape (paper): cBV-HB constantly above 0.95 on every cell and the only
method stable across both dataset families; BfH close behind; HARRA around
0.75-0.85 (worse on DBLP, where its single record-level bigram vector
confuses identical bigrams across attributes); SM-EB lowest, especially
under PH.
"""

from common import ALL_METHODS, METHOD_LABELS, run_method

from repro.evaluation.reporting import banner, format_table


def test_fig9_pairs_completeness(benchmark, report):
    benchmark.pedantic(
        lambda: run_method("cbv", "ncvr", "pl"), rounds=1, iterations=1
    )
    rows = []
    pc = {}
    for method in ALL_METHODS:
        row = [METHOD_LABELS[method]]
        for family in ("ncvr", "dblp"):
            for scheme in ("pl", "ph"):
                quality, __, __ = run_method(method, family, scheme)
                pc[(method, family, scheme)] = quality.pairs_completeness
                row.append(round(quality.pairs_completeness, 3))
        rows.append(row)
    report(
        banner("Figure 9 — Pairs Completeness (a: NCVR, b: DBLP)")
        + "\n"
        + format_table(
            ["method", "NCVR/PL", "NCVR/PH", "DBLP/PL", "DBLP/PH"], rows
        )
        + "\npaper shape: cBV-HB >= 0.95 everywhere and stable across families;"
        "\nBfH close; HARRA ~0.75-0.85; SM-EB lowest."
    )
    # cBV-HB's headline claim.
    for family in ("ncvr", "dblp"):
        for scheme in ("pl", "ph"):
            assert pc[("cbv", family, scheme)] >= 0.93, (family, scheme)
    # cBV-HB beats HARRA and SM-EB on every cell.
    for family in ("ncvr", "dblp"):
        for scheme in ("pl", "ph"):
            assert pc[("cbv", family, scheme)] >= pc[("harra", family, scheme)] - 0.02
            assert pc[("cbv", family, scheme)] >= pc[("smeb", family, scheme)] - 0.02
