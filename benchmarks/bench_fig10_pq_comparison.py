"""Figure 10 — Pairs Quality of all four methods.

Same grid as Figure 9.  Expected shape: BfH's PQ slightly above cBV-HB's
(its denser bit patterns produce more, smaller buckets); HARRA's PQ low
(blocking groups doubled to rescue its PC); SM-EB's PQ the lowest — its
blocks are overwhelmed by pairs that look close in the Euclidean space but
are far in the original space.
"""

from common import ALL_METHODS, METHOD_LABELS, run_method

from repro.evaluation.reporting import banner, format_table


def test_fig10_pairs_quality(benchmark, report):
    benchmark.pedantic(
        lambda: run_method("cbv", "ncvr", "pl"), rounds=1, iterations=1
    )
    rows = []
    pq = {}
    for method in ALL_METHODS:
        row = [METHOD_LABELS[method]]
        for family in ("ncvr", "dblp"):
            for scheme in ("pl", "ph"):
                quality, __, __ = run_method(method, family, scheme)
                pq[(method, family, scheme)] = quality.pairs_quality
                row.append(f"{quality.pairs_quality:.3g}")
        rows.append(row)
    report(
        banner("Figure 10 — Pairs Quality (a: NCVR, b: DBLP)")
        + "\n"
        + format_table(["method", "NCVR/PL", "NCVR/PH", "DBLP/PL", "DBLP/PH"], rows)
        + "\npaper shape: SM-EB lowest (blocks overwhelmed by non-matching pairs);"
        "\nrule-aware PH blocking trades PQ for PC (more blocking groups)."
    )
    # SM-EB's blocks are flooded with non-matching pairs (paper Fig. 10).
    # (NCVR only: SM-EB runs on a smaller slice, so its DBLP per-candidate
    # quality is not size-comparable with the 2k-record methods.)
    assert pq[("smeb", "ncvr", "pl")] <= pq[("cbv", "ncvr", "pl")] + 1e-9
    # PH's attribute-level blocking pays PQ for its PC (vs the PL run).
    assert pq[("cbv", "ncvr", "ph")] <= pq[("cbv", "ncvr", "pl")]
