"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables or figures as a
plain-text table/series (Section 6 of the paper; see DESIGN.md's
experiment index).  Dataset sizes default to laptop scale and are
multiplied by the ``REPRO_BENCH_SCALE`` environment variable — the paper's
1M-record runs correspond to scale ~500.

Expensive linkage runs are cached per (method, family, scheme) so the
figure benchmarks that share a grid (9, 10, 11, 12) reuse each other's
work within one pytest session.
"""

from __future__ import annotations

import os
import random
import time
from functools import lru_cache

from repro.baselines import BfHLinker, HarraLinker, SMEBLinker
from repro.core.linker import CompactHammingLinker, LinkageResult
from repro.data import (
    DBLPGenerator,
    LinkageProblem,
    NCVRGenerator,
    build_linkage_problem,
    scheme_ph,
    scheme_pl,
)
from repro.evaluation.metrics import LinkageQuality, evaluate_linkage
from repro.rules.parser import parse_rule

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Base dataset size per side (records in A and in B).
BASE_N = 2000
#: SM-EB pays ~40 edit-distance computations per string per attribute, so
#: it runs on a smaller slice, as its absolute numbers only need to show
#: the paper's *relative* shape (slowest by a large margin).
SMEB_N = 400

NCVR_NAMES = ("FirstName", "LastName", "Address", "Town")
DBLP_NAMES = ("FirstName", "LastName", "Title", "Year")

#: Attribute-level K^(f_i) from Table 3 (f4 takes no part in the PH rule).
NCVR_K = {"FirstName": 5, "LastName": 5, "Address": 10}
DBLP_K = {"FirstName": 5, "LastName": 5, "Title": 12}

PH_RULE = {
    "ncvr": parse_rule("(FirstName<=4) & (LastName<=4) & (Address<=8)"),
    "dblp": parse_rule("(FirstName<=4) & (LastName<=4) & (Title<=8)"),
}

GENERATORS = {"ncvr": NCVRGenerator, "dblp": DBLPGenerator}
ATTRIBUTE_NAMES = {"ncvr": NCVR_NAMES, "dblp": DBLP_NAMES}
ATTRIBUTE_K = {"ncvr": NCVR_K, "dblp": DBLP_K}

#: Matching thresholds of Section 6.1 per method and scheme.
HARRA_THRESHOLD = {"pl": 0.35, "ph": 0.45}
HARRA_TABLES = {"pl": 30, "ph": 90}
BFH_THRESHOLDS = {
    "pl": {name: 45 for name in ("f1", "f2", "f3", "f4")},
    "ph": {"f1": 45, "f2": 45, "f3": 90},
}
SMEB_THRESHOLDS = {
    "pl": {name: 4.5 for name in ("f1", "f2", "f3", "f4")},
    "ph": {"f1": 4.5, "f2": 4.5, "f3": 7.7},
}


def scaled(n: int) -> int:
    return max(50, int(n * SCALE))


def poisson_arrivals(rate_qps: float, n: int, seed: int) -> list[float]:
    """Arrival offsets (seconds from t=0) of a seeded Poisson process.

    The open-loop load shape for the async serving benchmark: ``n``
    strictly increasing offsets whose inter-arrival gaps are i.i.d.
    exponential with mean ``1 / rate_qps``.  Deterministic for a fixed
    ``(rate_qps, n, seed)`` so benchmark runs are reproducible.
    """
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = random.Random(seed)
    offsets: list[float] = []
    clock = 0.0
    for __ in range(n):
        clock += rng.expovariate(rate_qps)
        offsets.append(clock)
    return offsets


def query_stream(rows: list, n: int, seed: int) -> list:
    """A deterministic with-replacement sample of ``n`` query rows.

    The request mix both load generators (closed-loop and open-loop)
    replay: sampling with replacement models repeated lookups of hot
    records, and the fixed seed keeps the stream — and therefore the
    per-request parity baseline — identical across runs.
    """
    if not rows:
        raise ValueError("rows must be non-empty")
    rng = random.Random(seed)
    return [rows[rng.randrange(len(rows))] for __ in range(n)]


@lru_cache(maxsize=None)
def problem(family: str, scheme_name: str, n: int | None = None, seed: int = 7) -> LinkageProblem:
    """A cached linkage problem for one (family, scheme) cell."""
    scheme = scheme_pl() if scheme_name == "pl" else scheme_ph()
    n = scaled(BASE_N) if n is None else n
    return build_linkage_problem(GENERATORS[family](), n, scheme, seed=seed)


def make_linker(method: str, family: str, scheme_name: str, seed: int = 7):
    """Instantiate one of the four compared methods, paper-configured."""
    names = ATTRIBUTE_NAMES[family]
    if method == "cbv":
        if scheme_name == "pl":
            return CompactHammingLinker.record_level(threshold=4, k=30, seed=seed)
        return CompactHammingLinker.rule_aware(
            PH_RULE[family],
            k=ATTRIBUTE_K[family],
            attribute_names=names,
            seed=seed,
        )
    if method == "harra":
        # Exact MinHash (permutation_prefix=None): HARRA's PC loss here is
        # driven by early pruning against household/co-author duplicates;
        # the truncated-permutation artifact mainly wrecks RR via sentinel
        # mega-buckets and is exercised separately in the ablations.
        return HarraLinker(
            threshold=HARRA_THRESHOLD[scheme_name],
            k=5,
            n_tables=HARRA_TABLES[scheme_name],
            permutation_prefix=None,
            seed=seed,
        )
    if method == "bfh":
        thresholds = {
            names[int(f[1]) - 1]: value
            for f, value in BFH_THRESHOLDS[scheme_name].items()
        }
        return BfHLinker(thresholds, n_attributes=4, names=list(names), k=30, seed=seed)
    if method == "smeb":
        thresholds = {
            names[int(f[1]) - 1]: value
            for f, value in SMEB_THRESHOLDS[scheme_name].items()
        }
        return SMEBLinker(
            thresholds, n_attributes=4, names=list(names), d=10, pivot_sample=40, seed=seed
        )
    raise ValueError(f"unknown method {method!r}")


@lru_cache(maxsize=None)
def run_method(
    method: str, family: str, scheme_name: str, seed: int = 7
) -> tuple[LinkageQuality, float, LinkageResult]:
    """Run one method on one problem cell; cached across benchmark files."""
    n = scaled(SMEB_N) if method == "smeb" else None
    prob = problem(family, scheme_name, n=n)
    linker = make_linker(method, family, scheme_name, seed=seed)
    start = time.perf_counter()
    result = linker.link(prob.dataset_a, prob.dataset_b)
    elapsed = time.perf_counter() - start
    quality = evaluate_linkage(
        result.matches, prob.true_matches, result.n_candidates, prob.comparison_space
    )
    return quality, elapsed, result


METHOD_LABELS = {
    "cbv": "cBV-HB",
    "harra": "HARRA",
    "bfh": "BfH",
    "smeb": "SM-EB",
}
ALL_METHODS = ("cbv", "harra", "bfh", "smeb")
