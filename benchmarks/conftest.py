"""Benchmark-suite configuration.

Adds the benchmarks directory to the import path (so ``import common``
works under pytest's rootdir-relative collection) and provides a helper
fixture that prints report tables through pytest's capture, so figure
regenerations are visible in ``pytest benchmarks/ --benchmark-only`` runs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def report(capsys):
    """Print a figure/table regeneration through the capture barrier."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}")

    return _report
