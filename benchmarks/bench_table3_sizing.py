"""Table 3 — attribute-level parameters per data set.

Regenerates the paper's Table 3: the measured average bigram count
``b^(f_i)``, the Theorem 1 size ``m_opt^(f_i)`` and the attribute-level
``K^(f_i)`` for both dataset families, plus the record-level total
``m̄_opt`` (120 bits for NCVR, 267 for DBLP in the paper).

The timed unit is encoder calibration (sampling + Theorem 1 sizing).
"""

from common import ATTRIBUTE_K, GENERATORS, scaled

from repro.core.encoder import RecordEncoder
from repro.core.sizing import optimal_cvector_size
from repro.data.generators import EXPERIMENT_SCHEME, average_qgram_counts
from repro.evaluation.reporting import banner, format_table

PAPER_TABLE3 = {
    "ncvr": {"b": (5.1, 5.0, 20.0, 7.2), "m": (15, 15, 68, 22), "total": 120},
    "dblp": {"b": (4.8, 6.2, 64.8, 3.0), "m": (14, 19, 226, 8), "total": 267},
}


def _regenerate(family: str) -> tuple[str, int]:
    dataset = GENERATORS[family]().generate(scaled(2000), seed=3)
    measured = average_qgram_counts(dataset)
    k_map = ATTRIBUTE_K[family]
    rows = []
    total = 0
    for i, (name, b) in enumerate(measured.items()):
        m_opt = optimal_cvector_size(b)
        total += m_opt
        rows.append(
            [
                f"f{i + 1} = {name}",
                round(b, 1),
                m_opt,
                k_map.get(name, "-"),
                PAPER_TABLE3[family]["b"][i],
                PAPER_TABLE3[family]["m"][i],
            ]
        )
    table = format_table(
        ["attribute", "b (meas.)", "m_opt", "K", "b (paper)", "m_opt (paper)"], rows
    )
    return table, total


def test_table3_ncvr(benchmark, report):
    dataset = GENERATORS["ncvr"]().generate(scaled(2000), seed=3)
    rows = dataset.value_rows()
    benchmark.pedantic(
        lambda: RecordEncoder.calibrated(rows[:1000], scheme=EXPERIMENT_SCHEME, seed=0),
        rounds=3,
        iterations=1,
    )
    table, total = _regenerate("ncvr")
    report(
        f"{banner('Table 3 — NCVR attribute parameters')}\n{table}\n"
        f"record-level m̄_opt = {total} (paper: {PAPER_TABLE3['ncvr']['total']})"
    )
    assert abs(total - PAPER_TABLE3["ncvr"]["total"]) <= 12


def test_table3_dblp(benchmark, report):
    dataset = GENERATORS["dblp"]().generate(scaled(2000), seed=3)
    rows = dataset.value_rows()
    benchmark.pedantic(
        lambda: RecordEncoder.calibrated(rows[:1000], scheme=EXPERIMENT_SCHEME, seed=0),
        rounds=3,
        iterations=1,
    )
    table, total = _regenerate("dblp")
    report(
        f"{banner('Table 3 — DBLP attribute parameters')}\n{table}\n"
        f"record-level m̄_opt = {total} (paper: {PAPER_TABLE3['dblp']['total']})"
    )
    assert abs(total - PAPER_TABLE3["dblp"]["total"]) <= 20
