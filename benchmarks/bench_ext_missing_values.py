"""Extension — missing and non-standardised values (paper §7).

The paper's future work plans to "extend the experimental part by
comparing the effectiveness of our method with the baselines in
identifying records with missing or non-standardized values", noting that
"the initial results indicate that by applying PH, the gain in accuracy
compared to the baselines is larger".

This benchmark runs that experiment: PL typos are combined with (a) a
missing-value corruption that blanks Town/Address, and (b) a word-order
scramble on Address.  Rule-aware cBV-HB blocks only on the attributes its
rule constrains, so blanking *unconstrained* attributes barely moves it,
while the record-level baselines lose whole-record similarity.
"""

from common import GENERATORS, NCVR_NAMES, scaled

from repro.baselines.harra import HarraLinker
from repro.core.linker import CompactHammingLinker
from repro.data import build_linkage_problem, scheme_pl
from repro.data.quality import CompositeScheme, MissingValueScheme, WordScrambleScheme
from repro.evaluation.metrics import evaluate_linkage
from repro.evaluation.reporting import banner, format_table
from repro.rules.parser import parse_rule

RULE = parse_rule("(FirstName<=4) & (LastName<=4)")
K = {"FirstName": 5, "LastName": 5}


def _problem(corruption, seed):
    return build_linkage_problem(
        GENERATORS["ncvr"](), scaled(1500), corruption, seed=seed
    )


def _linkers(seed):
    return {
        "cBV-HB (rule-aware)": CompactHammingLinker.rule_aware(
            RULE, k=K, attribute_names=NCVR_NAMES, seed=seed
        ),
        "cBV-HB (record)": CompactHammingLinker.record_level(
            threshold=8, k=30, seed=seed
        ),
        "HARRA": HarraLinker(threshold=0.35, n_tables=30, seed=seed),
    }


def test_ext_missing_and_nonstandard_values(benchmark, report):
    corruptions = {
        "PL only": scheme_pl(),
        "PL + missing Town/Address": CompositeScheme(
            (scheme_pl(), MissingValueScheme(0.5, protect=(0, 1)))
        ),
        "PL + scrambled Address": CompositeScheme(
            (scheme_pl(), WordScrambleScheme(0.8))
        ),
    }
    problems = {
        label: _problem(corruption, seed=23 + i)
        for i, (label, corruption) in enumerate(corruptions.items())
    }
    benchmark.pedantic(
        lambda: _linkers(5)["cBV-HB (rule-aware)"].link(
            problems["PL only"].dataset_a, problems["PL only"].dataset_b
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    pc = {}
    for label, prob in problems.items():
        for method, linker in _linkers(5).items():
            result = linker.link(prob.dataset_a, prob.dataset_b)
            quality = evaluate_linkage(
                result.matches, prob.true_matches, result.n_candidates,
                prob.comparison_space,
            )
            pc[(label, method)] = quality.pairs_completeness
            rows.append([label, method, round(quality.pairs_completeness, 3)])
    report(
        banner("Extension §7 — missing / non-standardised values (NCVR)")
        + "\n"
        + format_table(["corruption", "method", "PC"], rows)
        + "\nshape: the rule-aware blocker ignores the corrupted, unconstrained"
        "\nattributes entirely — its PC is stable while whole-record methods drop."
    )
    for label in corruptions:
        # The rule-aware pipeline stays within 5 points of its clean PC.
        assert pc[(label, "cBV-HB (rule-aware)")] >= pc[("PL only", "cBV-HB (rule-aware)")] - 0.05
    # And under missing values it beats the whole-record representations.
    missing = "PL + missing Town/Address"
    assert pc[(missing, "cBV-HB (rule-aware)")] >= pc[(missing, "HARRA")] - 0.02
    assert pc[(missing, "cBV-HB (rule-aware)")] >= pc[(missing, "cBV-HB (record)")] - 0.02
