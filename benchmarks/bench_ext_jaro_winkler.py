"""Extension — towards a Jaro-Winkler embedding (paper §7).

Section 7's first future-work item is "a distance-preserving and
lightweight embedding method for the Jaro-Winkler metric, which was
specifically developed for ... names, surnames, or addresses".  The
groundwork that requires is a *threshold-calibration* study: how cleanly
does each candidate metric separate matched from non-matched attribute
values, and how stable is the threshold across attributes?

This benchmark measures, on perturbed name pairs, the separation between
the matched and non-matched score distributions for (a) the compact
Hamming distance, (b) Jaro-Winkler distance, and (c) Jaccard bigram
distance — reporting each metric's best single threshold and the accuracy
it achieves.  The Hamming threshold is *integral and type-derived*
(<= 4 bits per substitution); JW needs a data-dependent cut-off, which is
exactly the calibration burden the planned embedding would remove.
"""

import numpy as np
from common import GENERATORS, scaled

from repro.core.cvector import CVectorEncoder
from repro.data.generators import EXPERIMENT_SCHEME
from repro.data.perturb import Operation, apply_operation
from repro.evaluation.reporting import banner, format_table
from repro.hamming.distance import jaccard_distance_sets
from repro.text.jaro import jaro_winkler_distance


def _name_pairs(n, seed):
    """(matched pairs, non-matched pairs) of first names."""
    dataset = GENERATORS["ncvr"]().generate(n, seed=seed)
    names = dataset.column("FirstName")
    rng = np.random.default_rng(seed)
    matched = []
    for name in names:
        op = (Operation.SUBSTITUTE, Operation.INSERT, Operation.DELETE)[
            int(rng.integers(0, 3))
        ]
        matched.append((name, apply_operation(name, op, EXPERIMENT_SCHEME.alphabet, rng)))
    shuffled = list(names)
    rng.shuffle(shuffled)
    unmatched = [
        (a, b) for a, b in zip(names, shuffled) if a != b
    ]
    return matched, unmatched


def _best_threshold(scores_m, scores_u):
    """The single cut-off maximising classification accuracy."""
    candidates = np.unique(np.concatenate([scores_m, scores_u]))
    best_acc, best_thr = 0.0, 0.0
    for thr in candidates:
        acc = (
            (scores_m <= thr).sum() + (scores_u > thr).sum()
        ) / (len(scores_m) + len(scores_u))
        if acc > best_acc:
            best_acc, best_thr = acc, float(thr)
    return best_thr, best_acc


def test_ext_jaro_winkler_threshold_calibration(benchmark, report):
    matched, unmatched = _name_pairs(scaled(1500), seed=29)
    encoder = CVectorEncoder.calibrated(
        [a for a, __ in matched], scheme=EXPERIMENT_SCHEME, seed=29
    )

    def hamming_scores(pairs):
        return np.asarray(
            [encoder.encode(a).hamming(encoder.encode(b)) for a, b in pairs],
            dtype=float,
        )

    def jw_scores(pairs):
        return np.asarray([jaro_winkler_distance(a, b) for a, b in pairs])

    def jaccard_scores(pairs):
        return np.asarray(
            [
                jaccard_distance_sets(
                    EXPERIMENT_SCHEME.index_set(a), EXPERIMENT_SCHEME.index_set(b)
                )
                for a, b in pairs
            ]
        )

    benchmark.pedantic(lambda: hamming_scores(matched[:200]), rounds=1, iterations=1)
    rows = []
    accuracy = {}
    for label, scorer in (
        ("compact Hamming", hamming_scores),
        ("Jaro-Winkler", jw_scores),
        ("Jaccard (bigrams)", jaccard_scores),
    ):
        scores_m = scorer(matched)
        scores_u = scorer(unmatched)
        threshold, acc = _best_threshold(scores_m, scores_u)
        accuracy[label] = acc
        rows.append(
            [
                label,
                round(float(scores_m.mean()), 3),
                round(float(scores_u.mean()), 3),
                round(threshold, 3),
                round(acc, 4),
            ]
        )
    report(
        banner("Extension §7 — threshold calibration across metrics (FirstName)")
        + "\n"
        + format_table(
            ["metric", "mean d (match)", "mean d (non-match)", "best threshold", "accuracy"],
            rows,
        )
        + "\nthe compact Hamming threshold is type-derived (<= 4 per edit) and"
        "\nneeds no calibration; JW separates well but its cut-off is data-"
        "\ndependent — the calibration burden a JW embedding would remove."
    )
    # All three metrics separate matches from non-matches well.
    for label, acc in accuracy.items():
        assert acc >= 0.9, label
    # The type-derived threshold 4 performs near the tuned Hamming optimum.
    scores_m = hamming_scores(matched)
    scores_u = hamming_scores(unmatched)
    acc_at_4 = ((scores_m <= 4).sum() + (scores_u > 4).sum()) / (
        len(scores_m) + len(scores_u)
    )
    assert acc_at_4 >= accuracy["compact Hamming"] - 0.05
