"""Snapshot serving benchmark: build-once amortisation + query throughput.

Times the serving story of ``repro.serve`` on the NCVR PL cell at
``REPRO_BENCH_SCALE`` and writes ``BENCH_serving.json`` at the repo root:

* **build vs load** — indexing the reference dataset from scratch
  (embed + index) against attaching the persisted snapshot bundle
  zero-copy (``numpy.load(..., mmap_mode="r")``).  The ratio is the
  amortisation argument for persisting at all.
* **query throughput** — QPS and p50/p95/p99 per-call latency of
  ``QueryEngine.query_batch`` for batch sizes {1, 64, 1024} at
  ``n_jobs`` in {1, 4}; batching must beat the per-call overhead of
  single-record querying by a wide margin.
* **invariance** — the full query stream answered by the mmap engine at
  ``n_jobs`` 1 and 4 and by a freshly rebuilt in-memory engine must be
  byte-identical (same ``(query, id, distance)`` arrays).
* **top-k prefilter** — the full stream as a top-k query with the sketch
  prefilter (:mod:`repro.hamming.sketch`) off vs on (running
  k-th-distance bound as the rejection threshold); answers must match
  byte-for-byte, and the cell records the reject rate alongside both
  timings.
* **sharded fan-out** — the full stream served by a
  ``ShardedQueryEngine`` over a persisted sharded bundle at ``n_shards``
  in {1, 4}; every cell must be byte-identical to the single-shard
  reference (the scatter-gather merge is deterministic by construction).
* **sharded small batch** — batch-64 QPS on the 4-shard bundle with a
  4-worker process pool configured, serial in-process scan
  (``serial_batch_limit`` default) vs forced pool fan-out
  (``serial_batch_limit=None``); answers must match byte-for-byte.
  This is the regression cell behind the small-batch serial path: pool
  dispatch dominates when ``batch x shards`` is small.
* **ingest + replay** — online appends into the sharded bundle's WAL,
  the replay cost a fresh open pays before compaction, and the
  compaction that folds the log back to zero-replay opens.

``--check`` exits non-zero when batching fails to reach 5x the batch-1
QPS, when any configuration (including every sharded cell) disagrees,
or — at full scale — when the cold load is not at least 10x faster than
rebuilding (the CI serving-smoke gate runs ``--check --tiny``, which
skips the load-ratio gate: at smoke scale both sides are timer noise).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from common import scaled

from repro.core.linker import CompactHammingLinker
from repro.core.persist import load_index_snapshot
from repro.core.qgram import clear_index_set_cache
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.evaluation.reporting import banner, format_table
from repro.hamming.lsh import HammingLSH
from repro.hamming.sketch import VerifyConfig
from repro.perf import ParallelConfig
from repro.serve import QueryEngine, ShardedQueryEngine
from repro.serve.sharded import DEFAULT_SERIAL_BATCH_LIMIT

#: Serving amortisation is a scale story — the reference side of a
#: deployment is large, so this benchmark defaults to 10x the linkage
#: benchmarks' problem size (still seconds end-to-end).
BASE_N = 20000
TINY_N = 300
SEED = 7
THRESHOLD = 4
K = 30
BATCH_SIZES = (1, 64, 1024)
JOBS = (1, 4)
SHARDS = (1, 4)
SMALL_BATCH = 64
TOP_K = 5
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

#: Gates (see module docstring).
MIN_BATCH_SPEEDUP = 5.0
MIN_LOAD_SPEEDUP = 10.0


def _percentiles(samples):
    values = np.asarray(samples, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(values, 50) * 1e3),
        "p95_ms": float(np.percentile(values, 95) * 1e3),
        "p99_ms": float(np.percentile(values, 99) * 1e3),
    }


def _time_rebuild(rows_a, encoder, repeats):
    """Best-of-N *cold* rebuild: embed dataset A and index it from scratch.

    The q-gram cache is cleared per repetition — a process that has to
    rebuild its index has not embedded these strings before, and that is
    the cost the snapshot load replaces.
    """
    best = float("inf")
    for __ in range(repeats):
        clear_index_set_cache()
        start = time.perf_counter()
        matrix = encoder.encode_dataset(rows_a)
        lsh = HammingLSH(
            n_bits=encoder.total_bits, k=K, threshold=THRESHOLD, seed=SEED
        )
        lsh.index(matrix)
        best = min(best, time.perf_counter() - start)
    return best


def _time_load(bundle, repeats):
    """Best-of-N cold attach of the snapshot bundle (mmap, zero-copy)."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        load_index_snapshot(bundle)
        best = min(best, time.perf_counter() - start)
    return best


def _batches(rows, batch_size, n_calls):
    """Deterministic query batches cycled from the query stream."""
    out = []
    cursor = 0
    for __ in range(n_calls):
        batch = [rows[(cursor + i) % len(rows)] for i in range(batch_size)]
        out.append(batch)
        cursor = (cursor + batch_size) % len(rows)
    return out


def _measure_throughput(engine, rows, batch_size, n_calls):
    """Per-call latencies + aggregate QPS for one (engine, batch) cell."""
    batches = _batches(rows, batch_size, n_calls)
    engine.query_batch(batches[0])  # warm up (worker pools, page cache)
    samples = []
    total_queries = 0
    started = time.perf_counter()
    for batch in batches:
        call_start = time.perf_counter()
        engine.query_batch(batch)
        samples.append(time.perf_counter() - call_start)
        total_queries += len(batch)
    elapsed = time.perf_counter() - started
    cell = {
        "batch_size": batch_size,
        "n_calls": n_calls,
        "qps": total_queries / elapsed if elapsed > 0 else float("inf"),
        **_percentiles(samples),
    }
    return cell


def _result_arrays(engine, rows):
    result = engine.query_batch(rows)
    return result.queries, result.ids, result.distances


def _measure_topk_prefilter(bundle, rows, repeats):
    """Top-k over the full stream, sketch prefilter off vs on (byte parity)."""
    cell = {"top_k": TOP_K}
    reference = None
    for label, verify in (("off", None), ("on", VerifyConfig())):
        engine = QueryEngine.from_snapshot(bundle, verify=verify)
        best = float("inf")
        result = None
        for __ in range(repeats):
            start = time.perf_counter()
            result = engine.query_batch(rows, top_k=TOP_K)
            best = min(best, time.perf_counter() - start)
        cell[f"prefilter_{label}_s"] = best
        arrays = (result.queries, result.ids, result.distances)
        if reference is None:
            reference = arrays
        else:
            cell["matches_identical"] = _identical(reference, arrays)
            cell["prefilter_reject_rate"] = engine.stats.get(
                "prefilter_reject_rate", 0.0
            )
    cell["speedup"] = (
        cell["prefilter_off_s"] / cell["prefilter_on_s"]
        if cell["prefilter_on_s"] > 0
        else float("inf")
    )
    return cell


def _identical(left, right):
    return all(np.array_equal(a, b) for a, b in zip(left, right))


def _measure_sharded(tmp, rows_a, rows_b, encoder, reference, repeats):
    """Scatter-gather serving at each shard count, with byte parity cells."""
    cells = []
    identical = {}
    for n_shards in SHARDS:
        built = ShardedQueryEngine.build(
            rows_a, encoder, n_shards=n_shards, threshold=THRESHOLD, k=K, seed=SEED
        )
        bundle = built.save(f"{tmp}/sharded{n_shards}")
        built.close()
        engine = ShardedQueryEngine.from_bundle(bundle)
        best = float("inf")
        result = None
        for __ in range(repeats):
            start = time.perf_counter()
            result = engine.query_batch(rows_b)
            best = min(best, time.perf_counter() - start)
        arrays = (result.queries, result.ids, result.distances)
        identical[f"sharded{n_shards}"] = _identical(reference, arrays)
        batches = engine.stats.get("n_batches", 1.0)
        cells.append(
            {
                "n_shards": n_shards,
                "full_stream_s": best,
                "qps": len(rows_b) / best if best > 0 else float("inf"),
                "fanout_s_per_batch": engine.stats.get("time_fanout_s", 0.0) / batches,
                "merge_s_per_batch": engine.stats.get("time_merge_s", 0.0) / batches,
            }
        )
        engine.close()
    return cells, identical


def _measure_sharded_small_batch(bundle, rows_b, n_calls):
    """Batch-64 on the 4-shard bundle: serial in-process scan vs pool fan-out.

    Both engines carry the same 4-worker process pool config; only
    ``serial_batch_limit`` differs, so the QPS ratio isolates the
    per-batch pool dispatch cost the serial path removes.  The parity
    cell re-answers one batch on both engines and must be byte-identical.
    """
    cell = {"batch_size": SMALL_BATCH, "n_shards": SHARDS[-1]}
    parallel = ParallelConfig(n_jobs=JOBS[-1], backend="process")
    reference = None
    identical = True
    for label, limit in (
        ("serial", DEFAULT_SERIAL_BATCH_LIMIT),
        ("fanout", None),
    ):
        engine = ShardedQueryEngine.from_bundle(
            bundle, parallel=parallel, serial_batch_limit=limit
        )
        batches = _batches(rows_b, SMALL_BATCH, n_calls)
        engine.query_batch(batches[0])  # warm up (pool startup, page cache)
        total_queries = 0
        started = time.perf_counter()
        for batch in batches:
            engine.query_batch(batch)
            total_queries += len(batch)
        elapsed = time.perf_counter() - started
        cell[f"{label}_qps"] = total_queries / elapsed if elapsed > 0 else float("inf")
        arrays = _result_arrays(engine, list(rows_b[:SMALL_BATCH]))
        if reference is None:
            reference = arrays
        else:
            identical = _identical(reference, arrays)
        engine.close()
    cell["serial_vs_fanout_speedup"] = (
        cell["serial_qps"] / cell["fanout_qps"]
        if cell["fanout_qps"] > 0
        else float("inf")
    )
    cell["n_calls"] = n_calls
    return cell, {"sharded_small_batch": identical}


def _measure_ingest_replay(tmp, rows_a, rows_b, encoder, n_ingest):
    """Durable ingest cost: WAL append, replay-on-open, and compaction."""
    base, extra = rows_a[:-n_ingest], rows_a[-n_ingest:]
    built = ShardedQueryEngine.build(
        base, encoder, n_shards=SHARDS[-1], threshold=THRESHOLD, k=K, seed=SEED
    )
    bundle = built.save(f"{tmp}/ingest")

    start = time.perf_counter()
    built.ingest(extra)
    ingest_s = time.perf_counter() - start
    built.close()

    start = time.perf_counter()
    replaying = ShardedQueryEngine.from_bundle(bundle)
    replay_open_s = time.perf_counter() - start
    replayed = replaying.index.counters["wal_replayed_records"]
    after_ingest = _result_arrays(replaying, rows_b)

    start = time.perf_counter()
    replaying.compact()
    compact_s = time.perf_counter() - start
    after_compact = _result_arrays(replaying, rows_b)
    replaying.close()

    start = time.perf_counter()
    compacted = ShardedQueryEngine.from_bundle(bundle)
    clean_open_s = time.perf_counter() - start
    compacted.close()

    full = QueryEngine.build(rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED)
    rebuilt = _result_arrays(full, rows_b)
    return {
        "n_shards": SHARDS[-1],
        "n_ingested": n_ingest,
        "ingest_s": ingest_s,
        "replay_open_s": replay_open_s,
        "wal_replayed_records": replayed,
        "compact_s": compact_s,
        "clean_open_s": clean_open_s,
    }, {
        "ingest_replay": _identical(rebuilt, after_ingest),
        "ingest_compacted": _identical(rebuilt, after_compact),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when a serving gate fails (CI serving-smoke)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke scale: small problem, few repeats, no load-ratio gate",
    )
    args = parser.parse_args(argv)

    n = TINY_N if args.tiny else scaled(BASE_N)
    repeats = 3
    calls_per_batch = {1: 30, 64: 8, 1024: 3} if args.tiny else {1: 200, 64: 30, 1024: 5}

    prob = build_linkage_problem(NCVRGenerator(), n, scheme_pl(), seed=SEED)
    rows_a = [tuple(r) for r in prob.dataset_a.value_rows()]
    rows_b = [tuple(r) for r in prob.dataset_b.value_rows()]

    linker = CompactHammingLinker.record_level(threshold=THRESHOLD, k=K, seed=SEED)
    encoder = linker.calibrate(prob.dataset_a, prob.dataset_b)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        memory_engine = QueryEngine.build(
            rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED
        )
        start = time.perf_counter()
        bundle = memory_engine.save(tmp + "/idx")
        save_s = time.perf_counter() - start

        rebuild_s = _time_rebuild(rows_a, encoder, repeats)
        load_s = _time_load(bundle, repeats)
        load_speedup = rebuild_s / load_s if load_s > 0 else float("inf")

        throughput = []
        for n_jobs in JOBS:
            engine = QueryEngine.from_snapshot(
                bundle, parallel=ParallelConfig(n_jobs=n_jobs)
            )
            for batch_size in BATCH_SIZES:
                cell = _measure_throughput(
                    engine, rows_b, batch_size, calls_per_batch[batch_size]
                )
                cell["n_jobs"] = n_jobs
                throughput.append(cell)

        reference = _result_arrays(memory_engine, rows_b)
        identical = {}
        for n_jobs in JOBS:
            engine = QueryEngine.from_snapshot(
                bundle, parallel=ParallelConfig(n_jobs=n_jobs)
            )
            identical[f"mmap_jobs{n_jobs}"] = _identical(
                reference, _result_arrays(engine, rows_b)
            )

        topk_prefilter = _measure_topk_prefilter(bundle, rows_b, repeats)
        identical["topk_prefilter"] = topk_prefilter["matches_identical"]

        sharded_cells, sharded_identical = _measure_sharded(
            tmp, rows_a, rows_b, encoder, reference, repeats
        )
        identical.update(sharded_identical)

        small_batch_calls = 4 if args.tiny else 12
        small_batch_cell, small_batch_identical = _measure_sharded_small_batch(
            f"{tmp}/sharded{SHARDS[-1]}", rows_b, small_batch_calls
        )
        identical.update(small_batch_identical)

        n_ingest = max(10, n // 100)
        ingest_cell, ingest_identical = _measure_ingest_replay(
            tmp, rows_a, rows_b, encoder, n_ingest
        )
        identical.update(ingest_identical)

    qps = {(cell["n_jobs"], cell["batch_size"]): cell["qps"] for cell in throughput}
    batch_speedup = qps[(1, 1024)] / qps[(1, 1)] if qps[(1, 1)] > 0 else float("inf")
    all_identical = all(identical.values())

    payload = {
        "benchmark": "serving",
        "dataset": "ncvr-pl",
        "n_records_per_side": n,
        "threshold": THRESHOLD,
        "k": K,
        "seed": SEED,
        "tiny": bool(args.tiny),
        "build": {
            "rebuild_s": rebuild_s,
            "save_s": save_s,
            "cold_load_s": load_s,
            "load_speedup_vs_rebuild": load_speedup,
        },
        "throughput": throughput,
        "batch_1024_vs_1_qps_speedup": batch_speedup,
        "topk_prefilter": topk_prefilter,
        "sharded": sharded_cells,
        "sharded_small_batch": small_batch_cell,
        "ingest_replay": ingest_cell,
        "results_identical": identical,
        "gates": {
            "min_batch_speedup": MIN_BATCH_SPEEDUP,
            "min_load_speedup": MIN_LOAD_SPEEDUP if not args.tiny else None,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(banner(f"snapshot serving @ n={n} per side"))
    print(
        f"rebuild {rebuild_s * 1e3:.1f} ms vs cold load {load_s * 1e3:.1f} ms "
        f"({load_speedup:.1f}x)"
    )
    rows = [
        [
            cell["n_jobs"],
            cell["batch_size"],
            f"{cell['qps']:.0f}",
            f"{cell['p50_ms']:.2f}",
            f"{cell['p95_ms']:.2f}",
            f"{cell['p99_ms']:.2f}",
        ]
        for cell in throughput
    ]
    print(format_table(["n_jobs", "batch", "QPS", "p50_ms", "p95_ms", "p99_ms"], rows))
    print(f"batch-1024 vs batch-1 QPS: {batch_speedup:.1f}x")
    print(
        f"top-{TOP_K} prefilter: {topk_prefilter['prefilter_off_s'] * 1e3:.1f} ms off "
        f"vs {topk_prefilter['prefilter_on_s'] * 1e3:.1f} ms on "
        f"({topk_prefilter['speedup']:.2f}x, reject rate "
        f"{topk_prefilter['prefilter_reject_rate']:.1%})"
    )
    shard_rows = [
        [
            cell["n_shards"],
            f"{cell['qps']:.0f}",
            f"{cell['fanout_s_per_batch'] * 1e3:.2f}",
            f"{cell['merge_s_per_batch'] * 1e3:.2f}",
        ]
        for cell in sharded_cells
    ]
    print(
        format_table(
            ["n_shards", "QPS", "fanout_ms/batch", "merge_ms/batch"], shard_rows
        )
    )
    print(
        f"sharded small batch (batch {SMALL_BATCH}, {SHARDS[-1]} shards, "
        f"{JOBS[-1]} jobs): serial {small_batch_cell['serial_qps']:.0f} QPS vs "
        f"fan-out {small_batch_cell['fanout_qps']:.0f} QPS "
        f"({small_batch_cell['serial_vs_fanout_speedup']:.1f}x)"
    )
    print(
        f"ingest {ingest_cell['n_ingested']} records: "
        f"{ingest_cell['ingest_s'] * 1e3:.1f} ms WAL append, "
        f"{ingest_cell['replay_open_s'] * 1e3:.1f} ms replay-open "
        f"({ingest_cell['wal_replayed_records']:.0f} records), "
        f"{ingest_cell['compact_s'] * 1e3:.1f} ms compaction, "
        f"{ingest_cell['clean_open_s'] * 1e3:.1f} ms clean open"
    )
    print(f"results identical across configurations: {all_identical}")
    print(f"wrote {OUTPUT}")

    if args.check:
        if not all_identical:
            print(
                f"CHECK FAILED: results differ across configurations: {identical}",
                file=sys.stderr,
            )
            return 1
        if batch_speedup < MIN_BATCH_SPEEDUP:
            print(
                f"CHECK FAILED: batch-1024 QPS only {batch_speedup:.1f}x batch-1 "
                f"(need >= {MIN_BATCH_SPEEDUP}x)",
                file=sys.stderr,
            )
            return 1
        if not args.tiny and load_speedup < MIN_LOAD_SPEEDUP:
            print(
                f"CHECK FAILED: cold load only {load_speedup:.1f}x faster than "
                f"rebuild (need >= {MIN_LOAD_SPEEDUP}x)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
