"""Figure 7 — PC versus the confidence ratio r of Theorem 1 (K = 35).

Sweeps r over {1/2, 1/3, 1/4, 1/5}; smaller r buys larger c-vectors (fewer
collisions) but, as the paper shows, "we do not gain a lot in terms of
accuracy by setting r < 1/3" — r = 1/3 is the knee.  The m̄_opt per r is
reported alongside PC so the size/accuracy trade-off is visible.
"""

from common import problem

from repro.core.config import CalibrationConfig
from repro.core.linker import CompactHammingLinker
from repro.evaluation.metrics import evaluate_linkage
from repro.evaluation.reporting import banner, format_table

R_VALUES = [("1/2", 1 / 2), ("1/3", 1 / 3), ("1/4", 1 / 4), ("1/5", 1 / 5)]
K = 35


def _run(r: float, seed: int = 5):
    prob = problem("ncvr", "pl")
    linker = CompactHammingLinker.record_level(
        threshold=4,
        k=K,
        calibration=CalibrationConfig(rho=1.0, r=r, seed=seed),
        seed=seed,
    )
    result = linker.link(prob.dataset_a, prob.dataset_b)
    quality = evaluate_linkage(
        result.matches, prob.true_matches, result.n_candidates, prob.comparison_space
    )
    return quality, linker.encoder.total_bits


def test_fig7_confidence_sweep(benchmark, report):
    benchmark.pedantic(lambda: _run(1 / 3), rounds=1, iterations=1)
    rows = []
    pc_by_r = {}
    for label, r in R_VALUES:
        quality, total_bits = _run(r)
        pc_by_r[label] = quality.pairs_completeness
        rows.append([f"r = {label}", total_bits, round(quality.pairs_completeness, 4)])
    report(
        banner(f"Figure 7 — PC vs confidence r (NCVR, PL, K = {K})")
        + "\n"
        + format_table(["confidence", "m̄_opt (bits)", "PC"], rows)
        + "\npaper shape: r = 1/3 already achieves the plateau; r < 1/3 only grows m̄_opt."
    )
    # The knee: r = 1/3 is within one point of the smallest-r accuracy.
    assert pc_by_r["1/3"] >= max(pc_by_r["1/4"], pc_by_r["1/5"]) - 0.01
    # And r = 1/3 does not lose to the cheaper r = 1/2 either.
    assert pc_by_r["1/3"] >= pc_by_r["1/2"] - 0.01
