"""Figure 8(b) — time to convert the data sets into each method's embedding.

Measures the embedding stage only, per method: HARRA's record-level bigram
sets, cBV-HB's compact c-vectors, BfH's Bloom filters and SM-EB's
StringMap coordinates.  Paper shape (NCVR): HARRA fastest (one vector per
record), cBV-HB close behind, BfH slower (15 cryptographic hashes per
bigram), SM-EB slowest by a wide margin (pivot distance computations).
"""

import time

from common import NCVR_NAMES, SMEB_N, problem, scaled

from repro.baselines.bloom import BloomRecordEncoder
from repro.baselines.harra import record_bigram_set
from repro.baselines.stringmap import StringMapEmbedder
from repro.core.encoder import RecordEncoder
from repro.core.qgram import QGramScheme
from repro.data.generators import EXPERIMENT_SCHEME
from repro.evaluation.reporting import banner, format_table
from repro.text.alphabet import TEXT_ALPHABET


def _rows():
    prob = problem("ncvr", "pl")
    return prob.dataset_a.value_rows()


def _time_harra(rows) -> float:
    scheme = QGramScheme(alphabet=TEXT_ALPHABET)
    start = time.perf_counter()
    for row in rows:
        record_bigram_set(row, scheme)
    return time.perf_counter() - start


def _time_cbv(rows) -> float:
    encoder = RecordEncoder.calibrated(
        rows[:1000], names=list(NCVR_NAMES), scheme=EXPERIMENT_SCHEME, seed=1
    )
    start = time.perf_counter()
    encoder.encode_dataset(rows)
    return time.perf_counter() - start


def _time_bfh(rows) -> float:
    encoder = BloomRecordEncoder(4, names=list(NCVR_NAMES), scheme=EXPERIMENT_SCHEME)
    start = time.perf_counter()
    encoder.encode_dataset(rows)
    return time.perf_counter() - start


def _time_smeb(rows) -> tuple[float, int]:
    subset = rows[: scaled(SMEB_N)]
    start = time.perf_counter()
    for att in range(4):
        column = [row[att] for row in subset]
        StringMapEmbedder(d=10, pivot_sample=40, seed=att).fit_transform(column)
    elapsed = time.perf_counter() - start
    return elapsed, len(subset)


def test_fig8b_embedding_time(benchmark, report):
    rows = _rows()
    benchmark.pedantic(lambda: _time_cbv(rows), rounds=1, iterations=1)
    t_harra = _time_harra(rows)
    t_cbv = _time_cbv(rows)
    t_bfh = _time_bfh(rows)
    t_smeb, n_smeb = _time_smeb(rows)
    per_record = {
        "HARRA": t_harra / len(rows),
        "cBV-HB": t_cbv / len(rows),
        "BfH": t_bfh / len(rows),
        "SM-EB": t_smeb / n_smeb,
    }
    table = format_table(
        ["method", "records", "seconds", "us/record"],
        [
            ["HARRA", len(rows), round(t_harra, 3), round(per_record["HARRA"] * 1e6, 1)],
            ["cBV-HB", len(rows), round(t_cbv, 3), round(per_record["cBV-HB"] * 1e6, 1)],
            ["BfH", len(rows), round(t_bfh, 3), round(per_record["BfH"] * 1e6, 1)],
            ["SM-EB", n_smeb, round(t_smeb, 3), round(per_record["SM-EB"] * 1e6, 1)],
        ],
    )
    report(
        banner("Figure 8(b) — embedding time per method (NCVR)")
        + "\n" + table
        + "\npaper shape: HARRA least, SM-EB largest by a wide margin."
    )
    # The paper's ordering on per-record cost.
    assert per_record["SM-EB"] > per_record["BfH"]
    assert per_record["BfH"] > per_record["HARRA"]
