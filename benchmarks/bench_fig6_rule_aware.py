"""Figure 6 — attribute-level PC and PQ: rule-aware vs. standard blocking.

For the paper's rules

    C1 = (f1<=4) & (f2<=4) & (f3<=8)
    C2 = [(f1<=4) & (f2<=4)] | (f3<=8)
    C3 = (f1<=4) & !(f2<=4)

compares the rule-aware attribute-level blocker (Section 5.4) against the
standard record-level HB **at an equal blocking-group budget** — both
approaches get the same number of hash tables, so the comparison isolates
how well the blocking keys reflect the rule, exactly the effect Figure 6
plots.  Ground truth for each rule is the set of *all* record pairs whose
embedded attribute distances satisfy the rule (computed exhaustively),
since e.g. C3's NOT means rule-satisfying pairs are not provenance twins.

Expected shape: rule-aware PC >= standard at every budget, with the
standard approach unable to articulate C3's NOT operator at all during
blocking; rule-aware PQ for C1 lower at large budgets (more formulated
pairs across more groups).
"""

import numpy as np
from common import NCVR_K, NCVR_NAMES, problem

from repro.core.encoder import RecordEncoder
from repro.data.generators import EXPERIMENT_SCHEME
from repro.evaluation.metrics import evaluate_linkage, pairs_from_arrays
from repro.evaluation.reporting import banner, format_table
from repro.hamming.lsh import HammingLSH
from repro.rules.blocking import RuleAwareBlocker
from repro.rules.parser import parse_rule

RULES = {
    "C1": "(FirstName<=4) & (LastName<=4) & (Address<=8)",
    "C2": "[(FirstName<=4) & (LastName<=4)] | (Address<=8)",
    "C3": "(FirstName<=4) & !(LastName<=4)",
}
#: The record-level threshold a rule-blind HB must assume: the largest
#: total distance a rule-satisfying pair can exhibit on the constrained
#: attributes (NOT contributes nothing it can bound).
STANDARD_THRESHOLD = {"C1": 16, "C2": 16, "C3": 4}
BUDGETS = (5, 10, 20, 40)
K_MAP = {"FirstName": 5, "LastName": 5, "Address": 10}


def _setup():
    prob = problem("ncvr", "ph")
    rows_a = prob.dataset_a.value_rows()
    rows_b = prob.dataset_b.value_rows()
    encoder = RecordEncoder.calibrated(
        rows_a[:1000], names=list(NCVR_NAMES), scheme=EXPERIMENT_SCHEME, seed=5
    )
    return prob, encoder, encoder.encode_dataset(rows_a), encoder.encode_dataset(rows_b)


def _exhaustive_rule_truth(rule, encoder, matrix_a, matrix_b, chunk=200):
    """All (a, b) pairs whose embedded distances satisfy the rule."""
    n_a, n_b = matrix_a.n_rows, matrix_b.n_rows
    truth = set()
    all_b = np.arange(n_b)
    for start in range(0, n_a, chunk):
        rows_a = np.repeat(np.arange(start, min(start + chunk, n_a)), n_b)
        rows_b = np.tile(all_b, len(range(start, min(start + chunk, n_a))))
        distances = encoder.attribute_distances(matrix_a, rows_a, matrix_b, rows_b)
        keep = np.asarray(rule.evaluate(distances))
        truth.update(zip(rows_a[keep].tolist(), rows_b[keep].tolist()))
    return truth


def _run_rule_aware(rule, budget, prob, encoder, matrix_a, matrix_b, truth, seed=5):
    blocker = RuleAwareBlocker(rule, encoder, k=K_MAP, n_tables=budget, seed=seed)
    blocker.index(matrix_a)
    rows_a, rows_b, __ = blocker.match(matrix_b)
    cand_a, __ = blocker.candidate_pairs(matrix_b)
    return evaluate_linkage(
        pairs_from_arrays(rows_a, rows_b), truth, int(cand_a.size), prob.comparison_space
    )


def _run_standard(rule, threshold, budget, prob, encoder, matrix_a, matrix_b, truth, seed=5):
    lsh = HammingLSH(n_bits=encoder.total_bits, k=20, threshold=threshold, n_tables=budget, seed=seed)
    lsh.index(matrix_a)
    cand_a, cand_b = lsh.candidate_pairs(matrix_b)
    if cand_a.size:
        distances = encoder.attribute_distances(matrix_a, cand_a, matrix_b, cand_b)
        accepted = np.asarray(rule.evaluate(distances))
        matched = pairs_from_arrays(cand_a[accepted], cand_b[accepted])
    else:
        matched = set()
    return evaluate_linkage(matched, truth, int(cand_a.size), prob.comparison_space)


def test_fig6_rule_aware_vs_standard(benchmark, report):
    prob, encoder, matrix_a, matrix_b = _setup()
    rules = {name: parse_rule(text) for name, text in RULES.items()}
    truths = {
        name: _exhaustive_rule_truth(rule, encoder, matrix_a, matrix_b)
        for name, rule in rules.items()
    }
    benchmark.pedantic(
        lambda: _run_rule_aware(
            rules["C1"], 20, prob, encoder, matrix_a, matrix_b, truths["C1"]
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    pc = {}
    for name, rule in rules.items():
        for budget in BUDGETS:
            aware = _run_rule_aware(
                rule, budget, prob, encoder, matrix_a, matrix_b, truths[name]
            )
            standard = _run_standard(
                rule, STANDARD_THRESHOLD[name], budget, prob, encoder,
                matrix_a, matrix_b, truths[name],
            )
            pc[(name, budget)] = (aware.pairs_completeness, standard.pairs_completeness)
            rows.append(
                [
                    name,
                    budget,
                    round(aware.pairs_completeness, 3),
                    round(standard.pairs_completeness, 3),
                    f"{aware.pairs_quality:.2e}",
                    f"{standard.pairs_quality:.2e}",
                ]
            )
    report(
        banner("Figure 6 — rule-aware vs standard blocking (NCVR, PH, equal L budget)")
        + "\n"
        + format_table(
            ["rule", "L", "PC aware", "PC standard", "PQ aware", "PQ standard"], rows
        )
        + "\npaper shape: largest gap at C3 (standard cannot articulate NOT);"
        "\nOR rules likewise; pure-AND C1 is near parity at equal L here (the"
        "\nrule-blind sampler gains free agreement bits from the unconstrained"
        "\nTown attribute — see EXPERIMENTS.md)."
    )
    # The headline: rule-aware dominates wherever the rule has OR/NOT
    # structure the record-level sampler cannot express.
    for name in ("C2", "C3"):
        for budget in BUDGETS:
            aware_pc, standard_pc = pc[(name, budget)]
            assert aware_pc > standard_pc, (name, budget)
    # Pure AND stays close to the record-level sampler at equal budgets.
    for budget in BUDGETS:
        aware_pc, standard_pc = pc[("C1", budget)]
        assert aware_pc >= standard_pc - 0.25, budget
