"""Verification prefilter benchmark: sketch early-rejection vs the exact sweep.

Times the verify phase — candidate chunks in, matched pairs out — on the
DBLP PL cell embedded with the high-confidence Theorem-1 sizing
(``CalibrationConfig(r=0.05)``: ~1.5k-bit / 24-word record vectors, the
regime the paper's confidence analysis pays for and the one where
word-subset sketches have real headroom).  Writes ``BENCH_verify.json``
at the repo root:

* **verify off vs on** — best-of-N ``ThresholdVerifyStage.run`` over
  *pre-built* contexts (embeddings, index and candidate chunks are
  prepared once outside the timers), plain full-width sweep against the
  tiered sketch prefilter (:mod:`repro.hamming.sketch`).
* **byte identity** — the prefiltered run must reproduce the plain
  sweep's ``(rows_a, rows_b, distances)`` arrays exactly, and stay
  identical at ``n_jobs=2``.
* **counters** — per-tier rejection counts and the overall
  ``prefilter_reject_rate``.

``--check`` exits non-zero when the prefilter is not at least 2x faster
or any output differs.  The CI verify-smoke gate runs ``--check --tiny``:
byte identity is always enforced, but the speedup gate relaxes to 1.5x —
at smoke scale the fixed per-run overhead (chunk bookkeeping, pair sort)
eats into the kernel win that dominates at the real bench scale.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from common import scaled

from repro.core.config import CalibrationConfig
from repro.core.linker import CompactHammingLinker
from repro.data import DBLPGenerator, build_linkage_problem, scheme_pl
from repro.evaluation.reporting import banner, format_table
from repro.hamming.sketch import VerifyConfig
from repro.perf import ParallelConfig
from repro.pipeline.context import PipelineContext
from repro.pipeline.stages import ThresholdVerifyStage

#: Problem size per side (scaled by REPRO_BENCH_SCALE).  The r=0.05
#: sizing widens the LSH tables too, so 4000 records per side already
#: stream ~10M candidate pairs through the verify stage.
BASE_N = 4000
TINY_N = 1000
SEED = 7
#: Record-level threshold for the 24-word embedding: ~0.4% of the width,
#: matching the paper's tight-threshold regime (theta << m).
THRESHOLD = 10
K = 30
#: High-confidence calibration (Theorem 1 with r=0.05) — wide c-vectors.
CALIBRATION_R = 0.05
TIERS = (3, 8)
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_verify.json"

#: Gates: the ROADMAP's verify-phase target at bench scale, and the
#: overhead-tolerant floor the CI verify-smoke run enforces at --tiny.
MIN_SPEEDUP = 2.0
MIN_SPEEDUP_TINY = 1.5


def _prepare(prob):
    """Everything up to the verify stage, done once outside the timers."""
    linker = CompactHammingLinker.record_level(
        threshold=THRESHOLD,
        k=K,
        seed=SEED,
        calibration=CalibrationConfig(r=CALIBRATION_R),
    )
    encoder = linker.calibrate(prob.dataset_a, prob.dataset_b)
    rows_a = prob.dataset_a.value_rows()
    rows_b = prob.dataset_b.value_rows()
    matrix_a = encoder.encode_dataset(rows_a)
    matrix_b = encoder.encode_dataset(rows_b)
    lsh = linker._build_blocker(encoder)
    lsh.index(matrix_a)
    chunks = list(lsh.candidate_chunks(matrix_b))
    n_candidates = sum(int(chunk_a.size) for chunk_a, __ in chunks)
    return rows_a, rows_b, matrix_a, matrix_b, chunks, n_candidates


def _run_verify(prepared, verify, n_jobs=1):
    """One verify-stage run over a fresh context; returns (elapsed, ctx)."""
    rows_a, rows_b, matrix_a, matrix_b, chunks, __ = prepared
    ctx = PipelineContext(
        dataset_a=None,
        dataset_b=None,
        rows_a=rows_a,
        rows_b=rows_b,
        parallel=ParallelConfig(n_jobs=n_jobs),
        embedded_a=matrix_a,
        embedded_b=matrix_b,
        candidate_chunks=chunks,
    )
    stage = ThresholdVerifyStage(THRESHOLD, sort_pairs=True, verify=verify)
    start = time.perf_counter()
    stage.run(ctx)
    return time.perf_counter() - start, ctx


def _best_of(prepared, verify, repeats, n_jobs=1):
    best_s = float("inf")
    ctx = None
    for __ in range(repeats):
        elapsed, ctx = _run_verify(prepared, verify, n_jobs=n_jobs)
        best_s = min(best_s, elapsed)
    return best_s, ctx


def _identical(left, right):
    return (
        np.array_equal(left.out_a, right.out_a)
        and np.array_equal(left.out_b, right.out_b)
        and np.array_equal(left.record_distances, right.record_distances)
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the verify gates fail (CI verify-smoke)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke scale: small problem, more repeats against timer noise",
    )
    args = parser.parse_args(argv)

    n = TINY_N if args.tiny else scaled(BASE_N)
    repeats = 5 if args.tiny else 3

    prob = build_linkage_problem(DBLPGenerator(), n, scheme_pl(), seed=SEED)
    prepared = _prepare(prob)
    n_candidates = prepared[5]
    n_words = int(prepared[2].words.shape[1])

    config = VerifyConfig(tiers=TIERS)
    plain_s, plain_ctx = _best_of(prepared, None, repeats)
    sketch_s, sketch_ctx = _best_of(prepared, config, repeats)
    __, sketch_jobs2_ctx = _run_verify(prepared, config, n_jobs=2)

    identical = _identical(plain_ctx, sketch_ctx)
    identical_jobs2 = _identical(plain_ctx, sketch_jobs2_ctx)
    speedup = plain_s / sketch_s if sketch_s > 0 else float("inf")
    counters = {
        key: value
        for key, value in sketch_ctx.counters.items()
        if key.startswith("pairs_") or key == "prefilter_reject_rate"
    }

    payload = {
        "benchmark": "verify",
        "dataset": "dblp-pl",
        "n_records_per_side": n,
        "threshold": THRESHOLD,
        "k": K,
        "calibration_r": CALIBRATION_R,
        "n_words": n_words,
        "seed": SEED,
        "tiny": bool(args.tiny),
        "n_candidates": n_candidates,
        "n_matches": int(plain_ctx.out_a.size),
        "tiers": list(TIERS),
        "block_rows": config.block_rows,
        "plain_sweep_s": plain_s,
        "prefilter_s": sketch_s,
        "verify_speedup": speedup,
        "matches_identical": bool(identical and identical_jobs2),
        "matches_identical_jobs2": bool(identical_jobs2),
        "counters": counters,
        "gates": {
            "min_verify_speedup": MIN_SPEEDUP_TINY if args.tiny else MIN_SPEEDUP
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(banner(f"verification prefilter @ n={n} per side ({n_words} words)"))
    print(
        format_table(
            ["metric", "value"],
            [
                ["candidate pairs", n_candidates],
                ["matches", int(plain_ctx.out_a.size)],
                ["plain sweep (s)", f"{plain_s:.4f}"],
                ["prefilter (s)", f"{sketch_s:.4f}"],
                ["speedup", f"{speedup:.2f}x"],
                ["reject rate", f"{counters.get('prefilter_reject_rate', 0.0):.1%}"],
            ],
        )
    )
    tier_rows = [
        [key, int(counters[key])]
        for key in sorted(counters)
        if key.startswith("pairs_rejected_t") or key == "pairs_exact"
    ]
    print(format_table(["counter", "pairs"], tier_rows))
    print(f"matches identical (n_jobs 1 and 2): {identical and identical_jobs2}")
    print(f"wrote {OUTPUT}")

    if args.check:
        if not (identical and identical_jobs2):
            print(
                "CHECK FAILED: prefiltered matches differ from the plain sweep",
                file=sys.stderr,
            )
            return 1
        min_speedup = MIN_SPEEDUP_TINY if args.tiny else MIN_SPEEDUP
        if speedup < min_speedup:
            print(
                f"CHECK FAILED: verify speedup only {speedup:.2f}x "
                f"(need >= {min_speedup}x)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
