"""Extension — classic blocking vs LSH-based blocking (Related Work, §2).

Section 2 of the paper dismisses the two classic blocking methods — sorted
neighborhood [12] and canopy clustering [6] — because they "do not provide
any guarantees for identifying record pairs that are similar nor scale
well to large volumes of records".  This benchmark makes that claim
quantitative on the same PL problem: both classics are run with the same
compact-Hamming verification as cBV-HB, so the comparison isolates the
*blocking* strategy; a second, sort-key-hostile problem (typos in the
first attribute) shows the failure mode LSH is immune to.
"""

from common import GENERATORS, problem, scaled

from repro.baselines.canopy import CanopyLinker
from repro.baselines.sorted_neighborhood import SortedNeighborhoodLinker
from repro.core.linker import CompactHammingLinker
from repro.data import build_linkage_problem
from repro.data.perturb import PerturbationScheme
from repro.evaluation.metrics import evaluate_linkage
from repro.evaluation.reporting import banner, format_table


def _methods(seed=5):
    return {
        "cBV-HB": CompactHammingLinker.record_level(threshold=4, k=30, seed=seed),
        "SortedNbhd (w=10)": SortedNeighborhoodLinker(
            threshold=4, window=10, passes=1, seed=seed
        ),
        "SortedNbhd (w=10, 3 passes)": SortedNeighborhoodLinker(
            threshold=4, window=10, passes=3, seed=seed
        ),
        "Canopy (0.7/0.3)": CanopyLinker(threshold=4, loose=0.7, tight=0.3, seed=seed),
    }


def _evaluate(linker, prob):
    result = linker.link(prob.dataset_a, prob.dataset_b)
    quality = evaluate_linkage(
        result.matches, prob.true_matches, result.n_candidates, prob.comparison_space
    )
    return quality, result


def test_ext_classic_blocking(benchmark, report):
    easy = problem("ncvr", "pl")
    key_hostile = build_linkage_problem(
        GENERATORS["ncvr"](),
        scaled(1000),
        PerturbationScheme(name="first-attr", ops_per_attribute={0: 1}),
        seed=37,
    )
    benchmark.pedantic(
        lambda: _evaluate(_methods()["cBV-HB"], key_hostile), rounds=1, iterations=1
    )
    rows = []
    pc = {}
    for label, prob in (("PL", easy), ("first-attr typos", key_hostile)):
        for name, linker in _methods().items():
            quality, result = _evaluate(linker, prob)
            pc[(label, name)] = quality.pairs_completeness
            rows.append(
                [
                    label,
                    name,
                    round(quality.pairs_completeness, 3),
                    round(quality.reduction_ratio, 4),
                    round(result.total_time, 2),
                ]
            )
    report(
        banner("Extension §2 — classic blocking vs LSH (NCVR)")
        + "\n"
        + format_table(["problem", "method", "PC", "RR", "time (s)"], rows)
        + "\nthe classics have no Equation (2): when the sorting key itself is"
        "\ncorrupted, single-pass sorted neighborhood collapses while cBV-HB's"
        "\nrecall guarantee is perturbation-position-blind."
    )
    hostile = "first-attr typos"
    assert pc[(hostile, "cBV-HB")] >= 0.93
    assert pc[(hostile, "SortedNbhd (w=10)")] < pc[(hostile, "cBV-HB")]
