"""Figure 11 — Pairs Completeness per perturbation-operation type.

Builds PL and PH problems restricted to a single operation type
(substitute / insert / delete) and reports each method's PC on each.
Expected shape: all methods dip on substitutions (two q-grams change on
each side — the largest distortion in every space); cBV-HB stays >= ~0.95
for every operation type.
"""

from common import GENERATORS, make_linker, scaled

from repro.data import Operation, build_linkage_problem, scheme_ph, scheme_pl
from repro.evaluation.metrics import evaluate_linkage
from repro.evaluation.reporting import banner, format_table

METHODS = ("cbv", "harra", "bfh")
LABEL = {"cbv": "cBV-HB", "harra": "HARRA", "bfh": "BfH"}
N = 1500


def _problem(scheme_name: str, operation: Operation, seed: int):
    scheme_factory = scheme_pl if scheme_name == "pl" else scheme_ph
    return build_linkage_problem(
        GENERATORS["ncvr"](),
        scaled(N),
        scheme_factory(operations=[operation]),
        seed=seed,
    )


def _pc(method: str, prob, scheme_name: str) -> float:
    linker = make_linker(method, "ncvr", scheme_name, seed=5)
    result = linker.link(prob.dataset_a, prob.dataset_b)
    return evaluate_linkage(
        result.matches, prob.true_matches, result.n_candidates, prob.comparison_space
    ).pairs_completeness


def test_fig11_per_operation_pc(benchmark, report):
    problems = {
        (scheme, op): _problem(scheme, op, seed=17 + i)
        for i, (scheme, op) in enumerate(
            (s, o) for s in ("pl", "ph") for o in Operation
        )
    }
    benchmark.pedantic(
        lambda: _pc("cbv", problems[("pl", Operation.SUBSTITUTE)], "pl"),
        rounds=1,
        iterations=1,
    )
    pc = {}
    sections = []
    for scheme in ("pl", "ph"):
        rows = []
        for method in METHODS:
            row = [LABEL[method]]
            for op in Operation:
                value = _pc(method, problems[(scheme, op)], scheme)
                pc[(scheme, method, op)] = value
                row.append(round(value, 3))
            rows.append(row)
        sections.append(
            banner(f"Figure 11 — PC per operation type (NCVR, {scheme.upper()})")
            + "\n"
            + format_table(["method", "substitute", "insert", "delete"], rows)
        )
    report(
        "\n\n".join(sections)
        + "\npaper shape: substitution is hardest for every method; cBV-HB >= 0.95 on all types."
    )
    for scheme in ("pl", "ph"):
        for op in Operation:
            assert pc[(scheme, "cbv", op)] >= 0.93, (scheme, op)
