"""Figure 12(b) — total linkage run time per method, PL and PH.

Expected shape: cBV-HB and BfH fastest under PL; PH costs everyone more
(more blocking groups); HARRA's early pruning keeps it quick but
inaccurate; SM-EB slowest by a large margin.  SM-EB runs on a smaller
slice, so comparisons use per-pair-of-records time.
"""

from common import ALL_METHODS, METHOD_LABELS, SMEB_N, run_method, scaled, BASE_N

from repro.evaluation.reporting import banner, format_table


def test_fig12b_total_runtime(benchmark, report):
    benchmark.pedantic(
        lambda: run_method("cbv", "ncvr", "pl"), rounds=1, iterations=1
    )
    rows = []
    per_record = {}
    for method in ALL_METHODS:
        n = scaled(SMEB_N) if method == "smeb" else scaled(BASE_N)
        row = [METHOD_LABELS[method], n]
        for scheme in ("pl", "ph"):
            __, elapsed, __ = run_method(method, "ncvr", scheme)
            per_record[(method, scheme)] = elapsed / n
            row.append(round(elapsed, 2))
            row.append(round(elapsed / n * 1e3, 3))
        rows.append(row)
    report(
        banner("Figure 12(b) — total run time (NCVR)")
        + "\n"
        + format_table(
            ["method", "records", "PL (s)", "PL ms/rec", "PH (s)", "PH ms/rec"], rows
        )
        + "\npaper shape: PH costs more than PL (more blocking groups);"
        "\nSM-EB slowest per record by a large margin."
    )
    # SM-EB is the slowest per record under both schemes.
    for scheme in ("pl", "ph"):
        others = max(
            per_record[(m, scheme)] for m in ("cbv", "harra", "bfh")
        )
        assert per_record[("smeb", scheme)] > others
    # PH (attribute-level, more groups) costs cBV-HB more than PL.
    assert per_record[("cbv", "ph")] > per_record[("cbv", "pl")]
