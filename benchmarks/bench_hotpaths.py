"""Hot-path engine benchmark: pre-PR baseline vs the interned/chunked engine.

Times the four phases of ``CompactHammingLinker.link`` (embed / index /
candidate generation / match) on the NCVR PL cell at ``REPRO_BENCH_SCALE``
and writes ``BENCH_hotpaths.json`` at the repo root — the first point of
the perf trajectory.

The *baseline* numbers re-run the pre-engine hot path, reproduced here
verbatim so the comparison stays honest as the library evolves:

* embedding with one uncached ``qgram_index_set`` call per
  (record, attribute) — no value interning;
* indexing that builds a Python dict of id-list buckets per blocking
  group;
* candidate generation that walks every bucket in a Python loop and
  materialises every cross-product before a single global ``np.unique``.

The *engine* numbers run the current ``link()`` (interned encoding,
memory-bounded chunked de-duplication, single process by default).  The
script also verifies the engine's invariants — identical matches across
``n_jobs`` settings and chunk budgets — and records the outcome in the
JSON.

Since ``link()`` now executes on the ``repro.pipeline`` stage runner, the
script additionally times the same engine path driven *inline* (no stage
objects, no runner bookkeeping) and reports the runner's overhead ratio;
``--check`` exits non-zero on an empty candidate stream, any invariance
violation, or a runner overhead beyond tolerance (the CI perf-smoke
gate).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from common import scaled

from repro.core.encoder import RecordEncoder
from repro.core.linker import CompactHammingLinker
from repro.core.qgram import clear_index_set_cache, qgram_index_set
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.evaluation.reporting import banner, format_table
from repro.hamming.bitmatrix import scatter_bits
from repro.hamming.lsh import HammingLSH
from repro.perf import ParallelConfig

#: Problem size per side (scaled by REPRO_BENCH_SCALE).
BASE_N = 2000
SEED = 7
THRESHOLD = 4
K = 30
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_hotpaths.json"


# -- pre-PR reference implementations --------------------------------------------


def _baseline_encode_dataset(encoder: RecordEncoder, records):
    """The pre-engine embed loop: one uncached index_set per (record, attribute)."""
    rows, bits = [], []
    for att, (enc, layout) in enumerate(zip(encoder.encoders, encoder.layouts)):
        att_rows, originals = [], []
        scheme = enc.scheme
        for i, record in enumerate(records):
            u_s = qgram_index_set(
                record[att], scheme.q, scheme.alphabet, scheme.padded, scheme.pad_char
            )
            att_rows.extend([i] * len(u_s))
            originals.extend(u_s)
        if not originals:
            continue
        hashed = enc.hash_fn.apply(np.asarray(originals, dtype=np.int64))
        rows.append(np.asarray(att_rows, dtype=np.int64))
        bits.append(hashed + layout.offset)
    return scatter_bits(
        len(records), encoder.total_bits, np.concatenate(rows), np.concatenate(bits)
    )


def _baseline_index(lsh: HammingLSH, matrix_a):
    """The pre-engine ``insert_matrix``: one Python dict of buckets per group."""
    tables = []
    for group in lsh.groups:
        keys = group.composite.keys_for(matrix_a)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        bounds = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
        buckets = {}
        for i, start in enumerate(bounds):
            stop = bounds[i + 1] if i + 1 < len(bounds) else len(sorted_keys)
            key = sorted_keys[start].item()
            buckets.setdefault(key, []).extend(order[start:stop].tolist())
        tables.append(buckets)
    return tables


def _baseline_candidate_pairs(lsh: HammingLSH, tables, matrix_b):
    """The pre-engine generator: walk every bucket in a Python loop,
    concatenate every raw cross-product, then one global ``np.unique``
    (peak memory = all raw products at once)."""
    n_b = matrix_b.n_rows
    chunks = []
    for group, buckets in zip(lsh.groups, tables):
        keys_b = group.composite.keys_for(matrix_b)
        order = np.argsort(keys_b, kind="stable")
        sorted_keys = keys_b[order]
        bounds = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
        for i, start in enumerate(bounds):
            stop = bounds[i + 1] if i + 1 < len(bounds) else len(sorted_keys)
            ids_a = buckets.get(sorted_keys[start].item())
            if not ids_a:
                continue
            rows_b = order[start:stop]
            rows_a = np.asarray(ids_a, dtype=np.int64)
            chunks.append(
                np.repeat(rows_a, rows_b.size) * n_b + np.tile(rows_b, rows_a.size)
            )
    if not chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    encoded = np.unique(np.concatenate(chunks))
    return encoded // n_b, encoded % n_b


def _run_baseline(prob):
    """End-to-end pre-PR link(): calibrate, loop-embed, index, unique, verify."""
    phases = {}
    linker = CompactHammingLinker.record_level(threshold=THRESHOLD, k=K, seed=SEED)
    rows_a = prob.dataset_a.value_rows()
    rows_b = prob.dataset_b.value_rows()

    start = time.perf_counter()
    encoder = linker.calibrate(prob.dataset_a, prob.dataset_b)
    phases["calibrate"] = time.perf_counter() - start

    start = time.perf_counter()
    matrix_a = _baseline_encode_dataset(encoder, rows_a)
    matrix_b = _baseline_encode_dataset(encoder, rows_b)
    phases["embed"] = time.perf_counter() - start

    start = time.perf_counter()
    lsh = HammingLSH(
        n_bits=encoder.total_bits, k=K, threshold=THRESHOLD, seed=SEED
    )
    tables = _baseline_index(lsh, matrix_a)
    phases["index"] = time.perf_counter() - start

    start = time.perf_counter()
    cand_a, cand_b = _baseline_candidate_pairs(lsh, tables, matrix_b)
    phases["candidates"] = time.perf_counter() - start

    start = time.perf_counter()
    dist = matrix_a.hamming_rows(cand_a, matrix_b, cand_b)
    keep = dist <= THRESHOLD
    phases["match"] = time.perf_counter() - start

    phases["link_total"] = sum(phases.values())
    matches = set(zip(cand_a[keep].tolist(), cand_b[keep].tolist()))
    return phases, matches, int(cand_a.size)


#: Runner-overhead gate: the stage pipeline must stay within 5% of the
#: inline engine path, with an absolute slack absorbing timer noise on
#: sub-second runs.
OVERHEAD_REPEATS = 3
OVERHEAD_TOLERANCE = 1.05
OVERHEAD_SLACK_S = 0.05


def _run_direct(prob, max_chunk_pairs=None):
    """The engine hot path driven inline — no stage objects, no runner.

    Reproduces exactly what ``CompactHammingLinker.link`` does on the
    stage pipeline (interned embed, chunked candidates, chunk-wise verify,
    canonical pair order), so the only difference from ``_run_engine`` is
    the runner's per-stage bookkeeping.
    """
    linker = CompactHammingLinker.record_level(
        threshold=THRESHOLD, k=K, seed=SEED, max_chunk_pairs=max_chunk_pairs
    )
    rows_a = prob.dataset_a.value_rows()
    rows_b = prob.dataset_b.value_rows()

    start = time.perf_counter()
    encoder = linker.calibrate(prob.dataset_a, prob.dataset_b)
    matrix_a = encoder.encode_dataset(rows_a)
    matrix_b = encoder.encode_dataset(rows_b)
    lsh = linker._build_blocker(encoder)
    lsh.index(matrix_a)
    counters = {}
    parts_a, parts_b = [], []
    words_a, words_b = matrix_a.words, matrix_b.words
    n_candidates = 0
    for chunk_a, chunk_b in lsh.candidate_chunks(matrix_b, counters=counters):
        n_candidates += chunk_a.size
        xor = words_a[chunk_a] ^ words_b[chunk_b]
        dist = np.bitwise_count(xor).sum(axis=1).astype(np.int64)
        keep = dist <= THRESHOLD
        parts_a.append(chunk_a[keep])
        parts_b.append(chunk_b[keep])
    if parts_a:
        out_a = np.concatenate(parts_a)
        out_b = np.concatenate(parts_b)
        order = np.argsort(out_a * len(rows_b) + out_b, kind="stable")
        out_a, out_b = out_a[order], out_b[order]
    else:
        out_a = out_b = np.empty(0, dtype=np.int64)
    elapsed = time.perf_counter() - start
    matches = set(zip(out_a.tolist(), out_b.tolist()))
    return elapsed, matches, int(n_candidates)


def _measure_runner_overhead(prob, max_chunk_pairs):
    """Best-of-N inline vs pipeline timings and their agreement."""
    direct_s = float("inf")
    pipeline_s = float("inf")
    direct_matches = None
    pipeline_matches = None
    for __ in range(OVERHEAD_REPEATS):
        elapsed, direct_matches, __n = _run_direct(prob, max_chunk_pairs=max_chunk_pairs)
        direct_s = min(direct_s, elapsed)
        phases, result = _run_engine(prob, max_chunk_pairs=max_chunk_pairs)
        pipeline_s = min(pipeline_s, phases["link_total"])
        pipeline_matches = result.matches
    return {
        "direct_s": direct_s,
        "pipeline_s": pipeline_s,
        "ratio": pipeline_s / direct_s if direct_s > 0 else float("inf"),
        "tolerance_ratio": OVERHEAD_TOLERANCE,
        "slack_s": OVERHEAD_SLACK_S,
        "within_tolerance": pipeline_s
        <= direct_s * OVERHEAD_TOLERANCE + OVERHEAD_SLACK_S,
        "matches_identical": direct_matches == pipeline_matches,
    }


def _run_engine(prob, n_jobs=1, max_chunk_pairs=None):
    """End-to-end current link() with the given engine settings."""
    linker = CompactHammingLinker.record_level(
        threshold=THRESHOLD,
        k=K,
        seed=SEED,
        parallel=ParallelConfig(n_jobs=n_jobs),
        max_chunk_pairs=max_chunk_pairs,
    )
    start = time.perf_counter()
    result = linker.link(prob.dataset_a, prob.dataset_b)
    elapsed = time.perf_counter() - start
    phases = dict(result.timings)
    phases["link_total"] = elapsed
    return phases, result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on empty candidate stream or broken invariance (CI gate)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=1 << 20,
        help="max_chunk_pairs for the chunked engine run (default: 1Mi pairs)",
    )
    args = parser.parse_args(argv)

    n = scaled(BASE_N)
    prob = build_linkage_problem(NCVRGenerator(), n, scheme_pl(), seed=SEED)

    clear_index_set_cache()
    baseline_phases, baseline_matches, baseline_candidates = _run_baseline(prob)

    clear_index_set_cache()
    engine_phases, engine_result = _run_engine(prob, max_chunk_pairs=args.budget)

    # Invariance: matches identical across n_jobs and chunk budgets.
    _, result_jobs2 = _run_engine(prob, n_jobs=2, max_chunk_pairs=args.budget)
    _, result_unchunked = _run_engine(prob)
    matches = engine_result.matches
    invariant = (
        matches == result_jobs2.matches
        and matches == result_unchunked.matches
        and np.array_equal(engine_result.rows_a, result_jobs2.rows_a)
        and np.array_equal(engine_result.rows_b, result_jobs2.rows_b)
    )
    agrees_with_baseline = matches == baseline_matches

    overhead = _measure_runner_overhead(prob, max_chunk_pairs=args.budget)

    speedup = (
        baseline_phases["link_total"] / engine_phases["link_total"]
        if engine_phases["link_total"] > 0
        else float("inf")
    )
    payload = {
        "benchmark": "hotpaths",
        "dataset": "ncvr-pl",
        "n_records_per_side": n,
        "threshold": THRESHOLD,
        "k": K,
        "seed": SEED,
        "max_chunk_pairs": args.budget,
        "baseline": {
            "description": "pre-engine hot path: uncached per-record embed, "
            "dict-bucket indexing, materialise-all-then-unique candidates",
            "phases_s": baseline_phases,
            "n_candidates": baseline_candidates,
            "n_matches": len(baseline_matches),
        },
        "engine": {
            "description": "interned embed + memory-bounded chunked candidates "
            "(n_jobs=1)",
            "phases_s": engine_phases,
            "n_candidates": engine_result.n_candidates,
            "n_matches": engine_result.n_matches,
            "counters": engine_result.counters,
        },
        "speedup_link_total": speedup,
        "pipeline_overhead": overhead,
        "matches_identical_across_n_jobs": bool(invariant),
        "matches_identical_to_baseline": bool(agrees_with_baseline),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(banner(f"hot-path engine @ n={n} per side"))
    phase_names = ["calibrate", "embed", "index", "candidates", "match", "link_total"]
    rows = []
    for name in phase_names:
        rows.append(
            [
                name,
                baseline_phases.get(name, float("nan")),
                engine_phases.get(name, float("nan")),
            ]
        )
    print(format_table(["phase", "baseline_s", "engine_s"], rows))
    print(f"speedup (link_total): {speedup:.2f}x")
    print(
        f"runner overhead: pipeline {overhead['pipeline_s']:.3f} s vs inline "
        f"{overhead['direct_s']:.3f} s ({overhead['ratio']:.3f}x)"
    )
    print(f"matches identical across n_jobs/chunking: {invariant}")
    print(f"matches identical to baseline: {agrees_with_baseline}")
    print(f"wrote {OUTPUT}")

    if args.check:
        if engine_result.n_candidates == 0:
            print("CHECK FAILED: empty candidate stream", file=sys.stderr)
            return 1
        if not invariant:
            print("CHECK FAILED: matches differ across engine settings", file=sys.stderr)
            return 1
        if not agrees_with_baseline:
            print("CHECK FAILED: engine matches differ from baseline", file=sys.stderr)
            return 1
        if not overhead["matches_identical"]:
            print("CHECK FAILED: pipeline matches differ from inline path", file=sys.stderr)
            return 1
        if not overhead["within_tolerance"]:
            print(
                "CHECK FAILED: stage-runner overhead "
                f"{overhead['ratio']:.3f}x exceeds {OVERHEAD_TOLERANCE:.2f}x "
                f"(+{OVERHEAD_SLACK_S}s slack)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
