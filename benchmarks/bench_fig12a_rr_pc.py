"""Figure 12(a) — Reduction Ratio together with PC (scheme PL).

Plots the two measures side by side so a method is only "efficient" when
both are high.  Expected shape: RR high for every method except SM-EB
(blocks overwhelmed by non-matching pairs); the reduction keeps up with
accuracy only for cBV-HB and BfH, with cBV-HB the better PC of the two.
"""

from common import ALL_METHODS, METHOD_LABELS, run_method

from repro.evaluation.reporting import banner, format_table


def test_fig12a_rr_and_pc(benchmark, report):
    benchmark.pedantic(
        lambda: run_method("cbv", "ncvr", "pl"), rounds=1, iterations=1
    )
    rows = []
    rr = {}
    pc = {}
    for method in ALL_METHODS:
        quality, __, __ = run_method(method, "ncvr", "pl")
        rr[method] = quality.reduction_ratio
        pc[method] = quality.pairs_completeness
        rows.append(
            [
                METHOD_LABELS[method],
                round(quality.reduction_ratio, 4),
                round(quality.pairs_completeness, 3),
            ]
        )
    report(
        banner("Figure 12(a) — RR together with PC (NCVR, PL)")
        + "\n"
        + format_table(["method", "RR", "PC"], rows)
        + "\npaper shape: RR high for all but SM-EB; only cBV-HB and BfH keep"
        "\nhigh RR and high PC simultaneously, cBV-HB ahead on PC."
    )
    assert rr["cbv"] >= 0.99
    assert rr["bfh"] >= 0.99
    assert rr["smeb"] <= min(rr["cbv"], rr["bfh"], rr["harra"]) + 1e-9
    assert pc["cbv"] >= pc["bfh"] - 0.02  # cBV-HB at least matches BfH's PC
