"""Async serving benchmark: micro-batched front-end vs serial batch-1.

Measures the tentpole claim of ``repro.serve.asyncserve`` on the NCVR PL
cell at ``REPRO_BENCH_SCALE`` and writes ``BENCH_async_serving.json`` at
the repo root:

* **serial baseline** — the request stream answered one
  ``query_batch([row])`` call at a time: the QPS a client gets without
  coalescing, and the per-request latency floor.
* **closed-loop** — ``CONCURRENCY`` loop-driven clients, each awaiting
  its answer before sending the next request, through
  ``AsyncQueryServer.query``.  This is the throughput cell: admission
  pressure keeps the batcher's flushes near ``max_batch``.
* **open-loop** — the same stream fired on a seeded Poisson schedule
  (``poisson_arrivals``) at a multiple of the serial QPS, the
  arrival-rate-controlled regime an SLO is written against; records the
  achieved QPS and latency distribution under that offered load.

Every answered request is compared against the serial baseline — the
coalesced answer must be byte-identical per request.  ``--check`` (the
CI async-serving-smoke gate) exits non-zero on any parity failure, on
open-loop rejections, or when the closed- and open-loop QPS fail their
speedup floors over serial batch-1 (10x / 6x at full scale; at smoke
scale the floors drop because a ~300-record index answers batch-1
calls in tens of microseconds — there is little per-call overhead left
for coalescing to amortise).
"""

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

from common import poisson_arrivals, query_stream, scaled

from repro.core.linker import CompactHammingLinker
from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.evaluation.reporting import banner, format_table
from repro.serve import AsyncQueryServer, BatcherConfig, QueryEngine
from repro.serve.asyncserve import QueueFullError

BASE_N = 20000
TINY_N = 300
SEED = 7
THRESHOLD = 4
K = 30
CONCURRENCY = 512
MAX_BATCH = 256
MAX_WAIT_US = 2000.0
#: Open-loop offered rate as a multiple of the measured serial QPS.
OPEN_LOOP_RATE_FACTOR = 12.0
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_async_serving.json"

#: Gates (see module docstring).
MIN_CLOSED_SPEEDUP = 10.0
MIN_OPEN_SPEEDUP = 6.0
MIN_CLOSED_SPEEDUP_TINY = 2.0
MIN_OPEN_SPEEDUP_TINY = 1.5


def _percentiles(samples):
    ordered = sorted(samples)
    if not ordered:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    def at(q):
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))] * 1e3
    return {"p50_ms": at(0.50), "p95_ms": at(0.95), "p99_ms": at(0.99)}


def _measure_serial(engine, stream):
    """Batch-1 reference: per-request answers, latencies and QPS."""
    engine.query_batch([stream[0]])  # warm up (page cache, caches)
    answers = []
    latencies = []
    started = time.perf_counter()
    for row in stream:
        call_start = time.perf_counter()
        answers.append(engine.query_batch([row]).matches()[0])
        latencies.append(time.perf_counter() - call_start)
    elapsed = time.perf_counter() - started
    return answers, latencies, len(stream) / elapsed


async def _run_closed_loop(server, stream, concurrency):
    """``concurrency`` clients, each one request in flight at a time."""
    answers = [None] * len(stream)
    latencies = [0.0] * len(stream)
    cursor = 0

    async def client():
        nonlocal cursor
        while cursor < len(stream):
            i = cursor
            cursor += 1  # no await between read and bump: no lost indexes
            call_start = time.perf_counter()
            answers[i] = await server.query(stream[i])
            latencies[i] = time.perf_counter() - call_start

    started = time.perf_counter()
    await asyncio.gather(*[client() for __ in range(min(concurrency, len(stream)))])
    elapsed = time.perf_counter() - started
    return answers, latencies, len(stream) / elapsed


async def _run_open_loop(server, stream, offsets):
    """Fire request ``i`` at ``offsets[i]``; arrival rate, not clients,
    controls the load.  Rejected requests (queue full) stay ``None``."""
    answers = [None] * len(stream)
    latencies = [0.0] * len(stream)
    n_rejected = 0
    started = time.perf_counter()

    async def fire(i):
        nonlocal n_rejected
        delay = started + offsets[i] - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        call_start = time.perf_counter()
        try:
            answers[i] = await server.query(stream[i])
        except QueueFullError:
            n_rejected += 1
            return
        latencies[i] = time.perf_counter() - call_start

    await asyncio.gather(*[fire(i) for i in range(len(stream))])
    elapsed = time.perf_counter() - started
    answered = len(stream) - n_rejected
    return answers, latencies, answered / elapsed, n_rejected


def _parity(reference, answers):
    """True when every answered request matches the serial baseline."""
    return all(
        got is None or got == want for got, want in zip(answers, reference)
    )


async def _measure_async(bundle, stream, serial_answers, serial_qps):
    config = BatcherConfig(max_batch=MAX_BATCH, max_wait_us=MAX_WAIT_US)
    cells = {}
    async with AsyncQueryServer.from_bundle(bundle, config=config) as server:
        answers, latencies, qps = await _run_closed_loop(
            server, stream, CONCURRENCY
        )
        cells["closed_loop"] = {
            "concurrency": min(CONCURRENCY, len(stream)),
            "qps": qps,
            "speedup_vs_serial": qps / serial_qps,
            "identical": _parity(serial_answers, answers),
            "n_unanswered": sum(a is None for a in answers),
            **_percentiles(latencies),
        }
        closed_stats = server.stats()

    offered = OPEN_LOOP_RATE_FACTOR * serial_qps
    offsets = poisson_arrivals(offered, len(stream), seed=SEED)
    async with AsyncQueryServer.from_bundle(bundle, config=config) as server:
        answers, latencies, qps, n_rejected = await _run_open_loop(
            server, stream, offsets
        )
        answered = [lat for a, lat in zip(answers, latencies) if a is not None]
        cells["open_loop"] = {
            "offered_qps": offered,
            "qps": qps,
            "speedup_vs_serial": qps / serial_qps,
            "identical": _parity(serial_answers, answers),
            "n_rejected": n_rejected,
            **_percentiles(answered),
        }
        open_stats = server.stats()
    return cells, closed_stats, open_stats


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when a gate fails (CI async-serving-smoke)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke scale: small problem, short stream, relaxed speedup floors",
    )
    args = parser.parse_args(argv)

    n = TINY_N if args.tiny else scaled(BASE_N)
    n_requests = 400 if args.tiny else 4000
    min_closed = MIN_CLOSED_SPEEDUP_TINY if args.tiny else MIN_CLOSED_SPEEDUP
    min_open = MIN_OPEN_SPEEDUP_TINY if args.tiny else MIN_OPEN_SPEEDUP

    prob = build_linkage_problem(NCVRGenerator(), n, scheme_pl(), seed=SEED)
    rows_a = [tuple(r) for r in prob.dataset_a.value_rows()]
    rows_b = [tuple(r) for r in prob.dataset_b.value_rows()]
    linker = CompactHammingLinker.record_level(threshold=THRESHOLD, k=K, seed=SEED)
    encoder = linker.calibrate(prob.dataset_a, prob.dataset_b)
    stream = query_stream(rows_b, n_requests, seed=SEED)

    with tempfile.TemporaryDirectory() as tmp:
        built = QueryEngine.build(rows_a, encoder, threshold=THRESHOLD, k=K, seed=SEED)
        bundle = built.save(tmp + "/idx")

        engine = QueryEngine.from_snapshot(bundle)
        serial_answers, serial_latencies, serial_qps = _measure_serial(
            engine, stream
        )

        cells, closed_stats, open_stats = asyncio.run(
            _measure_async(bundle, stream, serial_answers, serial_qps)
        )

    serial_cell = {"qps": serial_qps, **_percentiles(serial_latencies)}
    all_identical = cells["closed_loop"]["identical"] and cells["open_loop"]["identical"]

    payload = {
        "benchmark": "async_serving",
        "dataset": "ncvr-pl",
        "n_records_per_side": n,
        "n_requests": n_requests,
        "threshold": THRESHOLD,
        "k": K,
        "seed": SEED,
        "tiny": bool(args.tiny),
        "batcher": {"max_batch": MAX_BATCH, "max_wait_us": MAX_WAIT_US},
        "serial_batch_1": serial_cell,
        "closed_loop": cells["closed_loop"],
        "open_loop": cells["open_loop"],
        "closed_loop_stats": closed_stats,
        "open_loop_stats": open_stats,
        "gates": {
            "min_closed_loop_speedup": min_closed,
            "min_open_loop_speedup": min_open,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(banner(f"async serving @ n={n} per side, {n_requests} requests"))
    rows = [
        [
            label,
            f"{cell['qps']:.0f}",
            f"{cell['qps'] / serial_qps:.1f}x",
            f"{cell['p50_ms']:.2f}",
            f"{cell['p95_ms']:.2f}",
            f"{cell['p99_ms']:.2f}",
        ]
        for label, cell in (
            ("serial batch-1", serial_cell),
            ("closed-loop", cells["closed_loop"]),
            ("open-loop", cells["open_loop"]),
        )
    ]
    print(format_table(["mode", "QPS", "vs serial", "p50_ms", "p95_ms", "p99_ms"], rows))
    counters = closed_stats["counters"]
    print(
        f"closed-loop batches: {counters.get('n_batches', 0):.0f} "
        f"(mean size {closed_stats['batch_size']['mean']:.1f}, "
        f"p50 {closed_stats['batch_size']['p50']:.0f}), "
        f"queue peak {counters.get('queue_depth_peak', 0):.0f}, "
        f"deadline misses {counters.get('n_deadline_missed', 0):.0f}"
    )
    print(
        f"open-loop offered {cells['open_loop']['offered_qps']:.0f} QPS, "
        f"achieved {cells['open_loop']['qps']:.0f} QPS, "
        f"rejected {cells['open_loop']['n_rejected']}"
    )
    print(f"results identical to serial baseline: {all_identical}")
    print(f"wrote {OUTPUT}")

    if args.check:
        failures = []
        if not all_identical:
            failures.append("coalesced answers differ from the serial baseline")
        if cells["closed_loop"]["n_unanswered"]:
            failures.append(
                f"{cells['closed_loop']['n_unanswered']} closed-loop requests unanswered"
            )
        if cells["open_loop"]["n_rejected"]:
            failures.append(
                f"{cells['open_loop']['n_rejected']} open-loop requests rejected"
            )
        closed_speedup = cells["closed_loop"]["speedup_vs_serial"]
        if closed_speedup < min_closed:
            failures.append(
                f"closed-loop QPS only {closed_speedup:.1f}x serial "
                f"(need >= {min_closed}x)"
            )
        open_speedup = cells["open_loop"]["speedup_vs_serial"]
        if open_speedup < min_open:
            failures.append(
                f"open-loop QPS only {open_speedup:.1f}x serial (need >= {min_open}x)"
            )
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
