"""Blocking selectivity vs K — the §4.2 overpopulation narrative.

Not a numbered figure, but the paper's Section 4.2 text makes a concrete,
testable claim: a too-small K generates "a small number of buckets in each
T_l, which will be overpopulated by mostly dissimilar pairs", degrading
HB toward all-pairs comparison.  This benchmark quantifies the bucket
landscape per K — bucket counts, the largest bucket, the Gini coefficient
of bucket sizes and the expected formulated pairs per table — and renders
the trend.
"""

from common import NCVR_NAMES, problem

from repro.core.encoder import RecordEncoder
from repro.data.generators import EXPERIMENT_SCHEME
from repro.evaluation.ascii import sparkline
from repro.evaluation.diagnostics import selectivity_sweep
from repro.evaluation.reporting import banner, format_table

K_VALUES = (4, 8, 12, 16, 20, 25, 30, 35, 40)


def test_selectivity_vs_k(benchmark, report):
    prob = problem("ncvr", "pl")
    rows = prob.dataset_a.value_rows()
    encoder = RecordEncoder.calibrated(
        rows[:1000], names=list(NCVR_NAMES), scheme=EXPERIMENT_SCHEME, seed=5
    )
    matrix = encoder.encode_dataset(rows)

    benchmark.pedantic(
        lambda: selectivity_sweep(matrix, (20,), threshold=4, seed=5),
        rounds=1,
        iterations=1,
    )
    sweep = selectivity_sweep(matrix, K_VALUES, threshold=4, seed=5)
    table_rows = [
        [
            d.k,
            d.n_tables,
            d.n_buckets,
            d.max_bucket_size,
            round(d.gini, 3),
            int(d.expected_pairs_per_table),
        ]
        for d in sweep
    ]
    pairs_trend = [d.expected_pairs_per_table for d in sweep]
    report(
        banner("Blocking selectivity vs K (NCVR, PL, Section 4.2)")
        + "\n"
        + format_table(
            ["K", "L", "buckets", "max bucket", "gini", "E[pairs]/table"],
            table_rows,
        )
        + f"\nE[pairs]/table trend over K: {sparkline(pairs_trend)}"
        + "\nsmall K = few overpopulated buckets (all-pairs-like); larger K"
        "\nsharpens the keys until group-building costs take over (Fig. 8a)."
    )
    first, last = sweep[0], sweep[-1]
    assert first.n_buckets < last.n_buckets
    assert first.expected_pairs_per_table > last.expected_pairs_per_table
    assert first.max_bucket_size > last.max_bucket_size
