"""Ablations of cBV-HB's design choices (DESIGN.md §4).

Not a paper figure — these isolate the contribution of each design choice
the paper argues for:

* **compact vs. full q-gram vectors** (§5.2's motivation): the full
  26^2-position vectors are sparse, slow to block and 5-30x larger;
* **collision budget rho** (Theorem 1's knob): larger rho shrinks the
  vectors but costs accuracy;
* **padded vs. unpadded q-grams** (footnote 4): padding adds edge bigrams;
* **Algorithm 2's de-duplication**: how many repeat distance computations
  the UniqueCollection saves across redundant blocking groups;
* **HARRA's early pruning**: what the iterative removal costs in PC.
"""

import time

import numpy as np
from common import problem

from repro.baselines.harra import HarraLinker
from repro.core.config import CalibrationConfig
from repro.core.encoder import RecordEncoder
from repro.core.linker import CompactHammingLinker
from repro.core.qgram import QGramScheme
from repro.data.generators import EXPERIMENT_SCHEME
from repro.evaluation.metrics import evaluate_linkage
from repro.evaluation.reporting import banner, format_table
from repro.hamming.lsh import HammingLSH
from repro.text.alphabet import Alphabet


def _quality(linker, prob):
    result = linker.link(prob.dataset_a, prob.dataset_b)
    return (
        evaluate_linkage(
            result.matches, prob.true_matches, result.n_candidates, prob.comparison_space
        ),
        result,
    )


def test_ablation_compact_vs_full_vectors(benchmark, report):
    """The §5.2 motivation: full q-gram vectors are sparse and heavy."""
    prob = problem("ncvr", "pl")
    rows_a = prob.dataset_a.value_rows()
    rows_b = prob.dataset_b.value_rows()

    def run_compact():
        linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=5)
        start = time.perf_counter()
        linker.link(prob.dataset_a, prob.dataset_b)
        return time.perf_counter() - start, linker.encoder.total_bits

    def run_full():
        # Record-level full q-gram vectors: n_f * |S|^2 positions.
        scheme = EXPERIMENT_SCHEME
        width = scheme.space_size
        from repro.hamming.bitmatrix import scatter_bits

        def embed(rows):
            r_idx, bits = [], []
            for i, row in enumerate(rows):
                for att, value in enumerate(row):
                    for x in scheme.index_set(value):
                        r_idx.append(i)
                        bits.append(att * width + x)
            return scatter_bits(
                len(rows), 4 * width,
                np.asarray(r_idx, dtype=np.int64), np.asarray(bits, dtype=np.int64),
            )

        start = time.perf_counter()
        matrix_a = embed(rows_a)
        matrix_b = embed(rows_b)
        lsh = HammingLSH(n_bits=4 * width, k=30, threshold=4, seed=5)
        lsh.index(matrix_a)
        lsh.match(matrix_a, matrix_b)
        return time.perf_counter() - start, 4 * width

    benchmark.pedantic(run_compact, rounds=1, iterations=1)
    t_compact, bits_compact = run_compact()
    t_full, bits_full = run_full()
    report(
        banner("Ablation — compact c-vectors vs full q-gram vectors (NCVR, PL)")
        + "\n"
        + format_table(
            ["representation", "bits/record", "total time (s)"],
            [
                ["c-vectors (Theorem 1)", bits_compact, round(t_compact, 3)],
                ["full q-gram vectors", bits_full, round(t_full, 3)],
            ],
        )
        + f"\ncompact vectors are {bits_full / bits_compact:.0f}x smaller."
    )
    assert bits_compact * 5 < bits_full


def test_ablation_rho_sweep(benchmark, report):
    """Theorem 1's collision budget: bigger rho = smaller vectors, lower PC."""
    prob = problem("ncvr", "pl")

    def run(rho):
        linker = CompactHammingLinker.record_level(
            threshold=4, k=30,
            calibration=CalibrationConfig(rho=rho, r=1 / 3, seed=5),
            seed=5,
        )
        quality, __ = _quality(linker, prob)
        return quality.pairs_completeness, linker.encoder.total_bits

    benchmark.pedantic(lambda: run(1.0), rounds=1, iterations=1)
    rows = []
    pc_by_rho = {}
    for rho in (0.5, 1.0, 2.0, 4.0, 8.0):
        pc, bits = run(rho)
        pc_by_rho[rho] = pc
        rows.append([rho, bits, round(pc, 4)])
    report(
        banner("Ablation — collision budget rho (NCVR, PL)")
        + "\n"
        + format_table(["rho", "m̄_opt (bits)", "PC"], rows)
        + "\nshape: the paper's rho = 1 sits on the accuracy plateau; very"
        "\nlarge budgets shrink vectors at the cost of completeness."
    )
    assert pc_by_rho[1.0] >= pc_by_rho[8.0] - 0.01


def test_ablation_padded_qgrams(benchmark, report):
    """Footnote 4's padding: edge bigrams raise b (bigger vectors), and the
    same edit can now move more bits, so thresholds must be re-derived."""
    prob = problem("ncvr", "pl")
    padded_scheme = QGramScheme(
        alphabet=Alphabet(EXPERIMENT_SCHEME.alphabet.chars), padded=True
    )

    def run(scheme, threshold):
        linker = CompactHammingLinker.record_level(
            threshold=threshold, k=30, scheme=scheme, seed=5
        )
        quality, __ = _quality(linker, prob)
        return quality.pairs_completeness, linker.encoder.total_bits

    benchmark.pedantic(lambda: run(EXPERIMENT_SCHEME, 4), rounds=1, iterations=1)
    pc_plain, bits_plain = run(EXPERIMENT_SCHEME, 4)
    pc_padded, bits_padded = run(padded_scheme, 4)
    report(
        banner("Ablation — padded vs unpadded bigrams (NCVR, PL, theta = 4)")
        + "\n"
        + format_table(
            ["q-grams", "m̄_opt (bits)", "PC"],
            [
                ["unpadded (Figure 1)", bits_plain, round(pc_plain, 4)],
                ["padded (footnote 4)", bits_padded, round(pc_padded, 4)],
            ],
        )
        + "\npadding grows every attribute by ~2 bigrams; with the same"
        "\nthreshold both stay highly complete (substitution still moves <= 4 bits)."
    )
    assert bits_padded > bits_plain
    assert pc_padded >= 0.9


def test_ablation_dedup_savings(benchmark, report):
    """Algorithm 2's UniqueCollection: repeat formulations across the L
    redundant blocking groups that a de-duplicating matcher skips."""
    prob = problem("ncvr", "pl")
    rows_a = prob.dataset_a.value_rows()
    rows_b = prob.dataset_b.value_rows()
    encoder = RecordEncoder.calibrated(rows_a[:1000], scheme=EXPERIMENT_SCHEME, seed=5)
    matrix_a = encoder.encode_dataset(rows_a)
    matrix_b = encoder.encode_dataset(rows_b)
    lsh = HammingLSH(n_bits=encoder.total_bits, k=30, threshold=4, seed=5)
    lsh.index(matrix_a)

    benchmark.pedantic(lambda: lsh.candidate_pairs(matrix_b), rounds=1, iterations=1)
    unique_a, __ = lsh.candidate_pairs(matrix_b)
    with_repeats = sum(
        pairs_a.size for pairs_a, __ in lsh.candidate_pairs_per_group(matrix_b)
    )
    report(
        banner("Ablation — Algorithm 2 de-duplication (NCVR, PL)")
        + "\n"
        + format_table(
            ["candidate stream", "distance computations"],
            [
                ["without de-duplication", with_repeats],
                ["with UniqueCollection", int(unique_a.size)],
            ],
        )
        + f"\nde-duplication removes {1 - unique_a.size / max(with_repeats, 1):.0%}"
        " of the distance computations across the redundant groups."
    )
    assert unique_a.size < with_repeats


def test_ablation_harra_permutation_prefix(benchmark, report):
    """The truncated-permutation artifact of HARRA's implementation
    (Section 6.1): examining only a prefix of each permutation creates
    sentinel mega-buckets and degrades blocking quality."""
    prob = problem("ncvr", "pl")

    def run(prefix):
        linker = HarraLinker(
            threshold=0.35, n_tables=30, permutation_prefix=prefix, seed=5
        )
        return _quality(linker, prob)

    benchmark.pedantic(lambda: run(None), rounds=1, iterations=1)
    rows = []
    stats = {}
    for label, prefix in (("exact MinHash", None), ("2% prefix (paper's artifact)", 0.02)):
        quality, result = run(prefix)
        stats[label] = quality
        rows.append(
            [
                label,
                round(quality.pairs_completeness, 4),
                quality.n_candidates,
                round(quality.reduction_ratio, 4),
            ]
        )
    report(
        banner("Ablation — HARRA's truncated permutations (NCVR, PL)")
        + "\n"
        + format_table(["minhash variant", "PC", "candidates", "RR"], rows)
        + "\ntruncation makes hash slots fail ('an index holding 0'), whose"
        "\nsentinel agreements blow up bucket sizes — more comparisons for"
        "\nthe same or worse completeness."
    )
    assert (
        stats["2% prefix (paper's artifact)"].n_candidates
        >= stats["exact MinHash"].n_candidates
    )


def test_ablation_harra_early_pruning(benchmark, report):
    """What HARRA's iterative early removal costs in completeness."""
    prob = problem("ncvr", "pl")
    benchmark.pedantic(
        lambda: HarraLinker(threshold=0.35, n_tables=30, seed=5).link(
            prob.dataset_a, prob.dataset_b
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    pc = {}
    for label, pruning in (("early pruning (h-CC)", True), ("no pruning", False)):
        linker = HarraLinker(
            threshold=0.35, n_tables=30, early_pruning=pruning, seed=5
        )
        quality, result = _quality(linker, prob)
        pc[pruning] = quality.pairs_completeness
        rows.append(
            [label, round(quality.pairs_completeness, 4), quality.n_candidates,
             round(result.total_time, 2)]
        )
    report(
        banner("Ablation — HARRA early pruning (NCVR, PL)")
        + "\n"
        + format_table(["variant", "PC", "candidates", "time (s)"], rows)
        + "\nearly pruning saves comparisons but forfeits matches whose record"
        "\nwas already claimed by a household near-duplicate."
    )
    assert pc[False] >= pc[True]
