"""Figure 8(a) — running time of cBV-HB as K varies (both schemes).

Sweeps the number of base hash functions K.  The paper finds a U-shape:
small K produces few, overpopulated buckets (the blocking degenerates
toward all-pairs comparison), larger K makes buckets selective, and very
large K pays for the extra blocking groups Equation (2) demands — with the
minimum near K = 30.

Following Section 6.2's sweep (which varies one record-level K for both
schemes), both PL and PH run the record-level HB here, with thresholds
theta_PL = 4 and theta_PH = 16 (= 4 + 4 + 8, the largest record-level
distance a PH-perturbed pair can reach).
"""

import time

from common import problem

from repro.core.linker import CompactHammingLinker
from repro.evaluation.reporting import banner, format_series, format_table
from repro.hamming.theory import hamming_lsh_parameters

K_VALUES = (10, 15, 20, 25, 30, 35, 40)
THRESHOLD = {"pl": 4, "ph": 16}


def _run(scheme: str, k: int, seed: int = 5) -> float:
    prob = problem("ncvr", scheme)
    linker = CompactHammingLinker.record_level(
        threshold=THRESHOLD[scheme], k=k, seed=seed
    )
    start = time.perf_counter()
    linker.link(prob.dataset_a, prob.dataset_b)
    return time.perf_counter() - start


def test_fig8a_k_sweep(benchmark, report):
    benchmark.pedantic(lambda: _run("pl", 30), rounds=1, iterations=1)
    rows = []
    times = {"pl": [], "ph": []}
    for k in K_VALUES:
        row = [k]
        for scheme in ("pl", "ph"):
            elapsed = _run(scheme, k)
            times[scheme].append(elapsed)
            __, tables = hamming_lsh_parameters(THRESHOLD[scheme], 120, k, 0.1)
            row.extend([tables, round(elapsed, 3)])
        rows.append(row)
    report(
        banner("Figure 8(a) — run time vs K (NCVR, record-level HB)")
        + "\n"
        + format_table(
            ["K", "L (PL)", "time PL (s)", "L (PH)", "time PH (s)"], rows
        )
        + "\n"
        + format_series("PL seconds", list(K_VALUES), times["pl"])
        + "\n"
        + format_series("PH seconds", list(K_VALUES), times["ph"])
        + "\npaper shape: U-shaped — overpopulated buckets at small K,"
        "\ngroup-building cost at large K, minimum near K = 30."
    )
    # The sweep's interior minimum beats at least one extreme clearly.
    for scheme in ("pl", "ph"):
        interior = min(times[scheme][2:5])  # K in {20, 25, 30}
        assert interior <= max(times[scheme][0], times[scheme][-1]) + 0.05
