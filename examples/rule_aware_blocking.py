"""Rule-aware blocking: adapt the LSH structure to the classification rule.

Section 5.4's contribution: when the matching step applies a rule such as

    (FirstName <= 4) & (LastName <= 4) & (Address <= 8)

the blocking step should not sample bits uniformly from the record-level
c-vector — it should sample per attribute, with the number of blocking
groups derived from the rule's collision probability (Definitions 4-6).
This example compiles all three of the paper's rule shapes (AND, OR-mixed,
NOT) and shows the structures and guarantees each induces, then links a
heavily perturbed dataset pair under rule C1.

Run:  python examples/rule_aware_blocking.py
"""

from repro import (
    CompactHammingLinker,
    NCVRGenerator,
    build_linkage_problem,
    evaluate_linkage,
    parse_rule,
    scheme_ph,
)
from repro.rules import AttributeParams, rule_collision_probability, rule_table_count

NAMES = ["FirstName", "LastName", "Address", "Town"]
K = {"FirstName": 5, "LastName": 5, "Address": 10}

RULES = {
    "C1 (AND)": "(FirstName<=4) & (LastName<=4) & (Address<=8)",
    "C2 (AND|OR)": "[(FirstName<=4) & (LastName<=4)] | (Address<=8)",
    "C3 (AND NOT)": "(FirstName<=4) & !(LastName<=4)",
}


def main() -> None:
    # Collision probabilities and Equation-(2) table counts for the
    # paper's Table 3 NCVR widths (15 / 15 / 68 bits).
    params = {
        "FirstName": AttributeParams(15, 5),
        "LastName": AttributeParams(15, 5),
        "Address": AttributeParams(68, 10),
    }
    print("rule-aware guarantees (Table 3 NCVR widths, delta = 0.1):")
    for label, text in RULES.items():
        rule = parse_rule(text)
        probability = rule_collision_probability(rule, params)
        tables = rule_table_count(rule, params)
        print(f"  {label:<13} p >= {probability:.4f}  ->  L = {tables}")
    print("  (C1's L = 178 is the number the paper reports for NCVR/PH)\n")

    # A heavy-perturbation problem: one typo in FirstName and LastName,
    # two in Address (scheme PH).
    problem = build_linkage_problem(NCVRGenerator(), 4000, scheme_ph(), seed=3)
    rule = parse_rule(RULES["C1 (AND)"])

    linker = CompactHammingLinker.rule_aware(
        rule, k=K, attribute_names=NAMES, seed=3
    )
    result = linker.link(problem.dataset_a, problem.dataset_b)
    quality = evaluate_linkage(
        result.matches, problem.true_matches, result.n_candidates,
        problem.comparison_space,
    )
    print(f"linked {len(problem.dataset_a)} x {len(problem.dataset_b)} records under C1:")
    print(f"  PC = {quality.pairs_completeness:.3f}   "
          f"PQ = {quality.pairs_quality:.4f}   RR = {quality.reduction_ratio:.4f}")

    # Every accepted pair provably satisfies the rule on measured
    # attribute-level Hamming distances:
    distances = result.attribute_distances
    print("  accepted-pair distance ranges:")
    for name in ("FirstName", "LastName", "Address"):
        print(f"    {name:<10} max u = {int(distances[name].max())}")

    # The compiled blocking structures:
    blocker = linker._build_blocker(linker.encoder)
    print("\ncompiled blocking structures for C1:")
    for info in blocker.structures:
        print(f"  {info.rule}: L = {info.n_tables}, "
              f"attributes = {', '.join(info.attributes)}")


if __name__ == "__main__":
    main()
