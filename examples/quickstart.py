"""Quickstart: link two noisy datasets with cBV-HB in a dozen lines.

Generates a voter-file-like dataset pair (each B record is a perturbed
copy of an A record with probability 0.5), links them with the compact
Hamming embedding + Hamming LSH pipeline, and reports the standard
blocking quality measures.

Run:  python examples/quickstart.py
"""

from repro import (
    CompactHammingLinker,
    NCVRGenerator,
    build_linkage_problem,
    evaluate_linkage,
    scheme_pl,
)


def main() -> None:
    # 1. A linkage problem: A and B with ground truth (PL = one typo per
    #    matched record, in one random attribute).
    problem = build_linkage_problem(
        NCVRGenerator(), n=5000, scheme=scheme_pl(), seed=42
    )
    print(f"dataset A: {len(problem.dataset_a)} records")
    print(f"dataset B: {len(problem.dataset_b)} records "
          f"({problem.n_true_matches} true matches)")
    print(f"example record: {problem.dataset_a[0].values}")

    # 2. The cBV-HB linker: one edit operation moves the compact Hamming
    #    distance by at most 4 bits (Section 5.1), so threshold 4 covers
    #    the PL scheme.  K = 30 base hashes; L comes from Equation (2).
    linker = CompactHammingLinker.record_level(threshold=4, k=30, seed=42)
    result = linker.link(problem.dataset_a, problem.dataset_b)

    # 3. The encoder was calibrated from the data via Theorem 1 — a whole
    #    four-attribute record fits in ~120 bits.
    print(f"\ncalibrated encoder: {linker.encoder}")
    for stage, seconds in result.timings.items():
        print(f"  {stage:<10} {seconds * 1e3:8.1f} ms")

    # 4. Quality against ground truth.
    quality = evaluate_linkage(
        result.matches,
        problem.true_matches,
        result.n_candidates,
        problem.comparison_space,
    )
    print(f"\npairs completeness (PC): {quality.pairs_completeness:.3f}")
    print(f"pairs quality      (PQ): {quality.pairs_quality:.3f}")
    print(f"reduction ratio    (RR): {quality.reduction_ratio:.4f}")
    print(f"precision:               {quality.precision:.3f}")
    print(f"candidates compared:     {quality.n_candidates} "
          f"(out of {problem.comparison_space} possible pairs)")


if __name__ == "__main__":
    main()
