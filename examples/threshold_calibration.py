"""Threshold calibration without guesswork.

The baselines in the paper all set their thresholds "after experimenting
exhaustively" — the compact Hamming space removes that step because
distances correspond to error *types* (Section 5.1).  This example:

1. derives the thresholds for an error model with `repro.rules.derive`
   (one typo per name field, two in the address — the paper's PH);
2. links with a deliberately loose threshold to collect the full
   candidate-distance spectrum;
3. sweeps the matching threshold (`repro.evaluation.curves`) and shows
   that the *derived* threshold sits at the PC/precision knee.

Run:  python examples/threshold_calibration.py
"""

from repro import CompactHammingLinker, NCVRGenerator, build_linkage_problem, scheme_pl
from repro.evaluation.ascii import bar_chart
from repro.evaluation.curves import threshold_curve
from repro.rules.derive import derive_thresholds, error_budget


def main() -> None:
    # 1. Derived thresholds: no data needed, just the error model.
    print("error model -> thresholds (Section 5.1 correspondence):")
    print(f"  one edit anywhere:        record theta = {error_budget(1)}")
    derived = derive_thresholds({"FirstName": 1, "LastName": 1, "Address": 2})
    for name, theta in derived.attribute_thresholds.items():
        print(f"  {name:<10} <= {theta} bits")
    print(f"  induced rule: {derived.rule()}\n")

    # 2. A linkage run with a loose threshold, to expose the spectrum.
    problem = build_linkage_problem(NCVRGenerator(), 4000, scheme_pl(), seed=21)
    linker = CompactHammingLinker.record_level(threshold=12, k=25, seed=21)
    result = linker.link(problem.dataset_a, problem.dataset_b)

    # 3. The sweep: quality at every threshold in one pass.
    curve = threshold_curve(
        result.rows_a, result.rows_b, result.record_distances,
        problem.true_matches,
    )
    print(f"{'theta':>6} {'matches':>8} {'PC':>7} {'precision':>10} {'F1':>7}")
    for point in curve:
        marker = "  <- derived theta" if point.threshold == 4 else ""
        print(
            f"{point.threshold:>6.0f} {point.n_matches:>8} "
            f"{point.pairs_completeness:>7.3f} {point.precision:>10.3f} "
            f"{point.f1:>7.3f}{marker}"
        )

    best = curve.best_f1()
    at_derived = curve.at(4)
    print(f"\nbest-F1 threshold (tuned):   {best.threshold:g}  (F1 = {best.f1:.3f})")
    print(f"derived threshold (theta=4): F1 = {at_derived.f1:.3f}")
    print("\nF1 comparison:")
    print(bar_chart({"tuned optimum": best.f1, "derived theta=4": at_derived.f1},
                    width=30, max_value=1.0))
    print("\n(the derived threshold needs no tuning data at all — that is the")
    print(" practical payoff of embedding into a space where distance counts errors)")


if __name__ == "__main__":
    main()
