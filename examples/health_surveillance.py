"""Streaming linkage: the paper's health-surveillance motivation.

Section 1 motivates compact Hamming embeddings with "a health surveillance
system that continuously integrates data from hospitals and pharmacy
stores by performing a large number of distance computations in
real-time".  This example builds exactly that: a hospital patient registry
is indexed once, then a stream of pharmacy purchase records is matched
one record at a time with sub-millisecond lookups.

Run:  python examples/health_surveillance.py
"""

import time

import numpy as np

from repro import NCVRGenerator, RecordEncoder, StreamingLinker, scheme_pl
from repro.data.generators import EXPERIMENT_SCHEME
from repro.data.schema import Schema


def main() -> None:
    rng = np.random.default_rng(7)

    # The hospital registry: 20,000 patients.
    registry = NCVRGenerator().generate(20_000, seed=7, id_prefix="H")
    print(f"hospital registry: {len(registry)} patients")

    # Calibrate the compact encoder on a registry sample (Theorem 1), then
    # index every patient into the Hamming LSH blocking groups.
    encoder = RecordEncoder.calibrated(
        [record.values for record in registry.sample(1000, rng)],
        scheme=EXPERIMENT_SCHEME,
        seed=7,
    )
    print(f"encoder: {encoder} — a patient fits in {encoder.total_bits} bits")

    linker = StreamingLinker(encoder, threshold=4, k=30, seed=7)
    start = time.perf_counter()
    linker.insert_dataset(registry)
    print(f"indexed in {time.perf_counter() - start:.2f} s")

    # The pharmacy stream: purchases referencing registry patients, with
    # the typos a pharmacist introduces at the counter (scheme PL).
    scheme = scheme_pl()
    schema = Schema(registry.schema.attributes)
    n_events, found, misses = 500, 0, 0
    latencies = []
    for event in range(n_events):
        patient_row = int(rng.integers(0, len(registry)))
        record, __ = scheme.perturb(
            registry[patient_row], schema, rng, new_id=f"P{event}"
        )
        start = time.perf_counter()
        hits = linker.query(record.values)
        latencies.append(time.perf_counter() - start)
        if any(rid == patient_row for rid, __ in hits):
            found += 1
        elif not hits:
            misses += 1

    latencies_ms = np.asarray(latencies) * 1e3
    print(f"\npharmacy events processed: {n_events}")
    print(f"correct patient found:     {found} ({found / n_events:.1%})")
    print(f"no candidate at all:       {misses}")
    print(
        "query latency:             "
        f"median {np.median(latencies_ms):.2f} ms, "
        f"p95 {np.percentile(latencies_ms, 95):.2f} ms"
    )
    print("\n(the >=95% hit rate under typos is the paper's Figure 9 shape;")
    print(" the millisecond lookups are why the embeddings are kept compact)")


if __name__ == "__main__":
    main()
