"""Multi-party linkage: more than two data custodians.

Section 5.3 notes the method "is capable of handling an arbitrary number
of data sets (two or more) belonging to different data custodians".  Here
three custodians (two hospitals and an insurer) each hold overlapping,
independently-typo'd views of the same population; Charlie calibrates one
shared compact encoder and links every pair of datasets.

Run:  python examples/multi_party.py
"""

import numpy as np

from repro import (
    CompactHammingLinker,
    NCVRGenerator,
    scheme_pl,
)
from repro.data.schema import Dataset, Schema


def perturbed_view(population, fraction, rng, scheme, prefix):
    """A custodian's view: a random subset of the population, with typos."""
    schema = Schema(population.schema.attributes)
    picks = np.flatnonzero(rng.random(len(population)) < fraction)
    records = []
    for i, row in enumerate(picks):
        record, __ = scheme.perturb(
            population[int(row)], schema, rng, new_id=f"{prefix}{i}"
        )
        records.append(record)
    view = Dataset(schema, records, name=prefix)
    return view, {i: int(row) for i, row in enumerate(picks)}


def main() -> None:
    rng = np.random.default_rng(11)
    scheme = scheme_pl()

    # The underlying population nobody sees in full.
    population = NCVRGenerator().generate(3000, seed=11, id_prefix="P")

    views = {}
    origin = {}
    for name, fraction in (("hospital-A", 0.6), ("hospital-B", 0.6), ("insurer", 0.7)):
        views[name], origin[name] = perturbed_view(
            population, fraction, rng, scheme, prefix=name[0].upper()
        )
        print(f"{name:<11} holds {len(views[name])} records")

    # One shared linker: calibrating once keeps all three embeddings in
    # the same compact Hamming space (threshold 8 covers one typo per side).
    names = list(views)
    datasets = [views[n] for n in names]
    linker = CompactHammingLinker.record_level(threshold=8, k=30, seed=11)
    results = linker.link_multiple(datasets)

    print(f"\nshared encoder: {linker.encoder}\n")
    print(f"{'pair':<26} {'found':>6} {'truth':>6} {'PC':>7}")
    for (i, j), result in results.items():
        # origin maps view row -> population row; shared origin = match.
        truth = {
            (a, b)
            for a in origin[names[i]]
            for b in origin[names[j]]
            if origin[names[i]][a] == origin[names[j]][b]
        }
        found = len(result.matches & truth)
        pc = found / len(truth) if truth else 1.0
        print(
            f"{names[i]} x {names[j]:<12} {found:>6} {len(truth):>6} {pc:>7.3f}"
        )

    print("\n(each custodian pair is linked in the same 120-bit space —")
    print(" no re-embedding per pair, which is what makes the compact")
    print(" representation attractive for distributed settings)")


if __name__ == "__main__":
    main()
