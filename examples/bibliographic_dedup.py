"""Bibliographic linkage: cBV-HB vs the baselines on DBLP-like records.

The paper's second dataset family has very different statistics from the
voter file — paper titles average ~65 bigrams while years have exactly 3 —
and it is where the baselines' weaknesses show: HARRA's single record-
level bigram vector confuses title bigrams with name bigrams, and BfH's
Bloom distances depend on string lengths.  This example links a DBLP-like
pair with all three Hamming-space methods and prints the comparison.

Run:  python examples/bibliographic_dedup.py
"""

from repro import (
    CompactHammingLinker,
    DBLPGenerator,
    build_linkage_problem,
    evaluate_linkage,
    scheme_pl,
)
from repro.baselines import BfHLinker, HarraLinker

NAMES = ["FirstName", "LastName", "Title", "Year"]


def main() -> None:
    problem = build_linkage_problem(DBLPGenerator(), 4000, scheme_pl(), seed=9)
    print("example record:")
    first, last, title, year = problem.dataset_a[0].values
    print(f"  {first} {last}: {title!r} ({year})")
    print(f"\n{problem.n_true_matches} true matches hidden in "
          f"{len(problem.dataset_a)} x {len(problem.dataset_b)} pairs\n")

    methods = {
        "cBV-HB": CompactHammingLinker.record_level(threshold=4, k=30, seed=9),
        "HARRA": HarraLinker(threshold=0.35, k=5, n_tables=30, seed=9),
        "BfH": BfHLinker(
            {name: 45 for name in NAMES}, n_attributes=4, names=NAMES, k=30, seed=9
        ),
    }

    print(f"{'method':<8} {'PC':>6} {'PQ':>8} {'RR':>8} {'time':>8}")
    for label, linker in methods.items():
        result = linker.link(problem.dataset_a, problem.dataset_b)
        quality = evaluate_linkage(
            result.matches, problem.true_matches, result.n_candidates,
            problem.comparison_space,
        )
        print(
            f"{label:<8} {quality.pairs_completeness:>6.3f} "
            f"{quality.pairs_quality:>8.4f} {quality.reduction_ratio:>8.4f} "
            f"{result.total_time:>7.2f}s"
        )

    print("\n(the paper's Figure 9(b) shape: cBV-HB is the only method whose")
    print(" PC is stable across dataset families; HARRA degrades on DBLP")
    print(" because identical bigrams from different attributes collide in")
    print(" its single record-level vector)")


if __name__ == "__main__":
    main()
