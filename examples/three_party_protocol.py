"""The paper's Section 3 workflow: Alice, Bob and Charlie.

Two data custodians who cannot share raw records agree on public encoding
parameters, embed their databases locally into compact c-vectors, and send
only record identifiers plus bit vectors to an independent linkage unit
(Charlie).  Charlie blocks and matches in the compact Hamming space and
returns matched id pairs — without ever seeing a name or an address.

Run:  python examples/three_party_protocol.py
"""

from repro.data import NCVRGenerator, build_linkage_problem, scheme_pl
from repro.protocol import DataCustodian, EncodingAgreement, LinkageUnit


def main() -> None:
    # The two databases (B holds perturbed copies of ~half of A's people).
    problem = build_linkage_problem(NCVRGenerator(), 5000, scheme_pl(), seed=13)
    alice = DataCustodian("alice", problem.dataset_a)
    bob = DataCustodian("bob", problem.dataset_b)

    # Step 1 — negotiate public parameters.  Only aggregate statistics
    # (average bigram counts per attribute) cross the trust boundary.
    agreement = EncodingAgreement.negotiate(
        [alice.dataset, bob.dataset], seed=13
    )
    print("agreed encoding:")
    for name, b, width in zip(
        agreement.attribute_names, agreement.qgram_counts, agreement.widths
    ):
        print(f"  {name:<10} b = {b:5.2f}  ->  m_opt = {width} bits")
    print(f"  record-level: {agreement.total_bits} bits\n")

    # Step 2 — each custodian encodes locally.
    encoded_a = alice.encode(agreement)
    encoded_b = bob.encode(agreement)
    print(f"alice submits {len(encoded_a)} ids + a "
          f"{encoded_a.matrix.n_rows}x{encoded_a.matrix.n_bits}-bit matrix")
    print(f"bob submits   {len(encoded_b)} ids + a "
          f"{encoded_b.matrix.n_rows}x{encoded_b.matrix.n_bits}-bit matrix\n")

    # Step 3 — Charlie links the embeddings (never the strings).
    charlie = LinkageUnit(agreement, threshold=4, k=30, seed=13)
    matched = charlie.link(encoded_a, encoded_b)

    truth = {
        (problem.dataset_a[a].record_id, problem.dataset_b[b].record_id)
        for a, b in problem.true_matches
    }
    found = set(matched) & truth
    print(f"charlie reports {len(matched)} matched id pairs")
    print(f"pairs completeness against ground truth: {len(found) / len(truth):.3f}")
    print("\n(charlie handled only ids and 120-bit vectors — the compact")
    print(" representation is what makes shipping embeddings to a third")
    print(" party cheap; see paper §7 for the secure-matching protocols")
    print(" this structure plugs into)")


if __name__ == "__main__":
    main()
