"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs an egg-link instead and needs nothing beyond setuptools.
"""

from setuptools import setup

setup()
